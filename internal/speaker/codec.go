package speaker

import (
	"errors"
	"fmt"
	"net"
	"time"

	"repro/internal/bgp"
	"repro/internal/wire"
	"repro/internal/wire/bgp4"
)

// LocalAS is the autonomous system number of the one AS every network of
// speakers models (the paper's setting is a single AS running I-BGP). It
// is in the RFC 6996 private range so a bgp4-codec speaker can face real
// stacks without squatting on an allocated number.
const LocalAS = 64512

// SessionInfo is everything a codec needs to run one session: the local
// speaker's identity, the hold policy, and the callbacks that tie
// wire-level mechanisms (originator stamping, loop detection) back to the
// network.
type SessionInfo struct {
	// LocalNode is the speaker's node index; PeerNode is the expected
	// peer, or -1 on the accept side where the handshake discovers it.
	LocalNode, PeerNode bgp.NodeID

	LocalAS    uint32
	LocalBGPID uint32
	// ClusterID is the RFC 4456 cluster ID this speaker stamps when
	// reflecting; conventionally its own BGP identifier.
	ClusterID uint32

	// HoldTime is the locally proposed hold time (0 disables keepalives
	// and the hold timer). Codecs without a liveness protocol ignore it.
	HoldTime time.Duration

	// BGPIDOf resolves a node index to its BGP identifier.
	BGPIDOf func(bgp.NodeID) (uint32, bool)

	// OnLoop is called once per announced route dropped by reflection
	// loop detection, from the session's read goroutine. May be nil.
	OnLoop func(prefix, path uint32)
}

// Codec selects a wire format for the network's sessions. Both codecs
// carry the identical logical messages, so the router cores — and
// therefore the typed-event streams, counters and chosen routes — cannot
// tell them apart; only the bytes on the loopback differ.
type Codec interface {
	Name() string
	// NewSession returns the per-session state for one connection. Called
	// once per session end, before Handshake.
	NewSession(info SessionInfo) SessionCodec
}

// SessionCodec frames and parses one session's byte stream.
type SessionCodec interface {
	// Handshake performs the codec's session establishment on conn and
	// returns the peer's node index. dialer distinguishes the connecting
	// from the accepting end for codecs with asymmetric establishment.
	Handshake(conn net.Conn, dialer bool) (bgp.NodeID, error)
	// ReadMessage blocks for the next logical message. It runs on the
	// session's read goroutine only.
	ReadMessage() (wire.Message, error)
	// AppendUpdate frames one logical UPDATE (possibly as several wire
	// messages) onto buf.
	AppendUpdate(buf []byte, u *wire.Update) ([]byte, error)
	// AppendKeepalive frames one liveness message onto buf.
	AppendKeepalive(buf []byte) []byte
	// AppendNotification frames one NOTIFICATION onto buf.
	AppendNotification(buf []byte, n wire.Notification) []byte
	// NotificationFor maps a ReadMessage error to the NOTIFICATION that
	// should be sent before teardown, if the codec wants one sent.
	NotificationFor(err error) (wire.Notification, bool)
	// HoldTime is the negotiated hold time after Handshake; zero means no
	// hold timer and no keepalive generation.
	HoldTime() time.Duration
}

// PrivateCodec is the original compact framing of package wire: no
// handshake beyond the dialer's OPEN, no liveness protocol.
var PrivateCodec Codec = privateCodec{}

// BGP4 is the real RFC 4271/4456 wire format with ADD-PATH, implemented
// by package bgp4: full OPEN capability negotiation, keepalives, hold
// timer, NOTIFICATION error reporting and reflection loop detection.
var BGP4 Codec = bgp4Codec{}

// CodecByName resolves a -codec flag value; the empty string selects the
// private codec.
func CodecByName(name string) (Codec, error) {
	switch name {
	case "", "private":
		return PrivateCodec, nil
	case "bgp4":
		return BGP4, nil
	default:
		return nil, fmt.Errorf("speaker: unknown codec %q (have private, bgp4)", name)
	}
}

// privateCodec reproduces the seed speaker's session behaviour exactly:
// the dialer sends one wire.Open carrying its node index, the acceptor
// reads it to learn who dialed, and no further session machinery exists.
type privateCodec struct{}

func (privateCodec) Name() string { return "private" }

func (privateCodec) NewSession(info SessionInfo) SessionCodec {
	return &privateSession{info: info}
}

type privateSession struct {
	info SessionInfo
	r    *wire.Reader
}

func (p *privateSession) Handshake(conn net.Conn, dialer bool) (bgp.NodeID, error) {
	p.r = wire.NewReader(conn)
	if dialer {
		err := wire.NewWriter(conn).WriteMessage(wire.Open{
			Version: wire.Version,
			BGPID:   p.info.LocalBGPID,
			NodeID:  uint32(p.info.LocalNode),
		})
		return p.info.PeerNode, err
	}
	msg, err := p.r.ReadMessage()
	if err != nil {
		return 0, err
	}
	open, ok := msg.(wire.Open)
	if !ok {
		return 0, errors.New("speaker: expected OPEN")
	}
	return bgp.NodeID(open.NodeID), nil
}

func (p *privateSession) ReadMessage() (wire.Message, error) { return p.r.ReadMessage() }

func (p *privateSession) AppendUpdate(buf []byte, u *wire.Update) ([]byte, error) {
	return wire.AppendUpdate(buf, u)
}

func (p *privateSession) AppendKeepalive(buf []byte) []byte {
	buf, _ = wire.Append(buf, wire.Keepalive{})
	return buf
}

func (p *privateSession) AppendNotification(buf []byte, n wire.Notification) []byte {
	buf, _ = wire.Append(buf, n)
	return buf
}

func (p *privateSession) NotificationFor(error) (wire.Notification, bool) {
	return wire.Notification{}, false
}

func (p *privateSession) HoldTime() time.Duration { return 0 }

// bgp4Codec adapts package bgp4's Session to the seam.
type bgp4Codec struct{}

func (bgp4Codec) Name() string { return "bgp4" }

func (bgp4Codec) NewSession(info SessionInfo) SessionCodec {
	cfg := bgp4.SessionConfig{
		LocalAS:   info.LocalAS,
		LocalID:   info.LocalBGPID,
		NodeID:    uint32(info.LocalNode),
		ClusterID: info.ClusterID,
		HoldTime:  info.HoldTime,
		OnLoop:    info.OnLoop,
	}
	if resolve := info.BGPIDOf; resolve != nil {
		cfg.OriginatorID = func(exitPoint uint32) (uint32, bool) {
			return resolve(bgp.NodeID(exitPoint))
		}
	}
	return &bgp4Session{info: info, s: bgp4.NewSession(cfg)}
}

type bgp4Session struct {
	info SessionInfo
	s    *bgp4.Session
}

func (b *bgp4Session) Handshake(conn net.Conn, _ bool) (bgp.NodeID, error) {
	if err := b.s.Establish(conn); err != nil {
		return 0, err
	}
	peer := b.s.Peer()
	if !peer.HasNodeID {
		return 0, errors.New("speaker: bgp4 peer did not advertise the node-ID capability")
	}
	if b.info.PeerNode >= 0 && bgp.NodeID(peer.NodeID) != b.info.PeerNode {
		return 0, fmt.Errorf("speaker: bgp4 peer identifies as node %d, expected %d", peer.NodeID, b.info.PeerNode)
	}
	return bgp.NodeID(peer.NodeID), nil
}

func (b *bgp4Session) ReadMessage() (wire.Message, error) { return b.s.ReadMessage() }

func (b *bgp4Session) AppendUpdate(buf []byte, u *wire.Update) ([]byte, error) {
	return b.s.AppendUpdate(buf, u), nil
}

func (b *bgp4Session) AppendKeepalive(buf []byte) []byte { return b.s.AppendKeepalive(buf) }

func (b *bgp4Session) AppendNotification(buf []byte, n wire.Notification) []byte {
	return b.s.AppendNotification(buf, n)
}

func (b *bgp4Session) NotificationFor(err error) (wire.Notification, bool) {
	return bgp4.NotificationFor(err)
}

func (b *bgp4Session) HoldTime() time.Duration { return b.s.HoldTime() }
