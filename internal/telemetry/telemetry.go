// Package telemetry is the live monitoring plane of a soak run: a
// BMP-style feed (RFC 7854's model — a monitoring station subscribing to
// a router's route events without participating in routing) that turns the
// typed router.Event stream of either substrate into newline-delimited
// JSON for live subscribers, plus rolling aggregates (event totals,
// flap count, convergence-latency percentiles, msgs/sec) served over HTTP.
//
// The feed is strictly an observer. Its Sink is installed alongside the
// trace renderer on the substrate's event multiplexer, so subscribing a
// telemetry client never changes what the routers do — and a feed with no
// subscribers skips JSON encoding entirely, keeping the soak's hot path
// allocation-free. Slow subscribers lose events (counted, never blocking):
// the routers must not be back-pressured by a stalled HTTP client.
package telemetry

import (
	"encoding/json"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/router"
)

// subBuffer is each subscriber's channel depth; a subscriber that falls
// this far behind starts losing events (counted in Stats.Dropped).
const subBuffer = 256

// Feed fans the router event stream out to live subscribers and keeps the
// rolling aggregates. One Feed serves one soak run.
type Feed struct {
	start time.Time

	// nsub gates the encode path: Sink pays for JSON only when someone
	// is listening.
	nsub    atomic.Int32
	events  atomic.Int64
	flaps   atomic.Int64
	streamd atomic.Int64
	dropped atomic.Int64

	mu       sync.Mutex
	subs     map[int]chan []byte
	nextID   int
	counters func() router.Snapshot
	lat      []int64
}

// NewFeed builds an empty feed; wire its Sink into the substrate's event
// stream and (optionally) BindCounters / RecordConvergence into the soak
// config.
func NewFeed() *Feed {
	return &Feed{start: time.Now(), subs: map[int]chan []byte{}}
}

// eventRecord is the JSON shape of one streamed router event. Optional
// fields are pointers so irrelevant ones vanish from the encoding; counts
// are copied out of the wire message, which is never retained.
type eventRecord struct {
	Type      string `json:"type"`
	T         int64  `json:"t"`
	Kind      string `json:"kind"`
	Node      int    `json:"node"`
	Peer      *int   `json:"peer,omitempty"`
	Prefix    *int64 `json:"prefix,omitempty"`
	Path      *int64 `json:"path,omitempty"`
	OldBest   *int64 `json:"old,omitempty"`
	NewBest   *int64 `json:"new,omitempty"`
	Announced *int   `json:"announced,omitempty"`
	Withdrawn *int   `json:"withdrawn,omitempty"`
	ReadyAt   *int64 `json:"readyAt,omitempty"`
	Flushed   *int   `json:"flushed,omitempty"`
	Code      *int   `json:"code,omitempty"`
	Subcode   *int   `json:"subcode,omitempty"`
}

func iptr(v int) *int       { return &v }
func i64ptr(v int64) *int64 { return &v }

// record maps a typed router event onto its wire shape.
func record(ev router.Event) eventRecord {
	rec := eventRecord{Type: "event", T: ev.Time, Kind: ev.Kind.String(), Node: int(ev.Node)}
	switch ev.Kind {
	case router.BestChanged:
		rec.Prefix = i64ptr(int64(ev.Prefix))
		rec.OldBest = i64ptr(int64(ev.OldBest))
		rec.NewBest = i64ptr(int64(ev.NewBest))
	case router.UpdateSent, router.UpdateReceived:
		rec.Peer = iptr(int(ev.Peer))
		if ev.Update != nil {
			rec.Announced = iptr(len(ev.Update.Announced))
			rec.Withdrawn = iptr(len(ev.Update.Withdrawn))
		}
	case router.MRAIDeferred:
		rec.Peer = iptr(int(ev.Peer))
		rec.ReadyAt = i64ptr(ev.ReadyAt)
	case router.Injected, router.Withdrawn:
		rec.Prefix = i64ptr(int64(ev.Prefix))
		rec.Path = i64ptr(int64(ev.Path))
	case router.PeerDown:
		rec.Peer = iptr(int(ev.Peer))
		rec.Flushed = iptr(ev.Flushed)
	case router.PeerUp, router.FaultDrop, router.FaultDuplicate, router.FaultReorder:
		rec.Peer = iptr(int(ev.Peer))
	case router.FaultDelay:
		rec.Peer = iptr(int(ev.Peer))
		rec.ReadyAt = i64ptr(ev.ReadyAt)
	case router.NotificationReceived, router.BadFrame:
		rec.Peer = iptr(int(ev.Peer))
		rec.Code = iptr(int(ev.Code))
		rec.Subcode = iptr(int(ev.Subcode))
	case router.HoldExpired:
		rec.Peer = iptr(int(ev.Peer))
	case router.RouteLoop:
		rec.Peer = iptr(int(ev.Peer))
		rec.Prefix = i64ptr(int64(ev.Prefix))
		rec.Path = i64ptr(int64(ev.Path))
	}
	return rec
}

// Sink consumes one router event. It is installed on the substrate's
// event multiplexer next to the trace renderer; with no live subscriber it
// only bumps two atomics.
func (f *Feed) Sink(ev router.Event) {
	f.events.Add(1)
	if ev.Kind == router.BestChanged {
		f.flaps.Add(1)
	}
	if f.nsub.Load() == 0 {
		return
	}
	line, err := json.Marshal(record(ev))
	if err != nil {
		return
	}
	f.mu.Lock()
	for _, ch := range f.subs {
		select {
		case ch <- line:
			f.streamd.Add(1)
		default:
			f.dropped.Add(1)
		}
	}
	f.mu.Unlock()
}

// SinkBatch consumes one dispatch round of router events — the batch-aware
// twin of Sink for substrates flushing a router.Mux per activation round.
// The aggregates are folded with two atomic adds per batch instead of per
// event, and with live subscribers the fan-out lock is taken once for the
// whole round. The slice is only read, never retained.
func (f *Feed) SinkBatch(evs []router.Event) {
	if len(evs) == 0 {
		return
	}
	flaps := 0
	for i := range evs {
		if evs[i].Kind == router.BestChanged {
			flaps++
		}
	}
	f.events.Add(int64(len(evs)))
	if flaps > 0 {
		f.flaps.Add(int64(flaps))
	}
	if f.nsub.Load() == 0 {
		return
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	for i := range evs {
		line, err := json.Marshal(record(evs[i]))
		if err != nil {
			continue
		}
		for _, ch := range f.subs {
			select {
			case ch <- line:
				f.streamd.Add(1)
			default:
				f.dropped.Add(1)
			}
		}
	}
}

// Subscribe registers a live event subscriber and returns its channel of
// encoded JSON lines plus a cancel that closes it. A subscriber that
// cannot keep up loses events rather than stalling the run.
func (f *Feed) Subscribe() (<-chan []byte, func()) {
	ch := make(chan []byte, subBuffer)
	f.mu.Lock()
	id := f.nextID
	f.nextID++
	f.subs[id] = ch
	f.mu.Unlock()
	f.nsub.Add(1)
	var once sync.Once
	return ch, func() {
		once.Do(func() {
			f.mu.Lock()
			delete(f.subs, id)
			f.mu.Unlock()
			f.nsub.Add(-1)
			close(ch)
		})
	}
}

// BindCounters installs the substrate's live counters getter. It has the
// signature churn.Config.BindCounters expects.
func (f *Feed) BindCounters(get func() router.Snapshot) {
	f.mu.Lock()
	f.counters = get
	f.mu.Unlock()
}

// RecordConvergence folds one post-burst convergence latency sample into
// the rolling histogram. It has the signature churn.Config.Latency expects.
func (f *Feed) RecordConvergence(lat int64) {
	f.mu.Lock()
	f.lat = append(f.lat, lat)
	f.mu.Unlock()
}

// Convergence summarises the convergence-latency samples seen so far
// (nearest-rank percentiles, substrate clock units).
type Convergence struct {
	Count int   `json:"count"`
	P50   int64 `json:"p50"`
	P99   int64 `json:"p99"`
	Max   int64 `json:"max"`
}

// Stats is one aggregate snapshot of the feed.
type Stats struct {
	Type        string          `json:"type"`
	UptimeMS    int64           `json:"uptimeMs"`
	Events      int64           `json:"events"`
	Flaps       int64           `json:"flaps"`
	Streamed    int64           `json:"streamed"`
	Dropped     int64           `json:"dropped"`
	Subscribers int             `json:"subscribers"`
	MsgsPerSec  float64         `json:"msgsPerSec"`
	Counters    router.Snapshot `json:"counters"`
	Convergence Convergence     `json:"convergence"`
}

// Stats assembles the current aggregate snapshot.
func (f *Feed) Stats() Stats {
	st := Stats{
		Type:        "stats",
		UptimeMS:    time.Since(f.start).Milliseconds(),
		Events:      f.events.Load(),
		Flaps:       f.flaps.Load(),
		Streamed:    f.streamd.Load(),
		Dropped:     f.dropped.Load(),
		Subscribers: int(f.nsub.Load()),
	}
	f.mu.Lock()
	get := f.counters
	samples := append([]int64(nil), f.lat...)
	f.mu.Unlock()
	if get != nil {
		st.Counters = get()
		if secs := time.Since(f.start).Seconds(); secs > 0 {
			st.MsgsPerSec = float64(st.Counters.Sent) / secs
		}
	}
	st.Convergence.Count = len(samples)
	if len(samples) > 0 {
		sort.Slice(samples, func(i, j int) bool { return samples[i] < samples[j] })
		rank := func(p float64) int64 {
			i := int(p*float64(len(samples))+0.5) - 1
			if i < 0 {
				i = 0
			}
			if i >= len(samples) {
				i = len(samples) - 1
			}
			return samples[i]
		}
		st.Convergence.P50 = rank(0.50)
		st.Convergence.P99 = rank(0.99)
		st.Convergence.Max = samples[len(samples)-1]
	}
	return st
}
