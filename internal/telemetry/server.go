package telemetry

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"time"
)

// Server exposes one Feed over HTTP:
//
//	GET /events    — newline-delimited JSON: one hello record, then every
//	                 router event live, with a stats record interleaved
//	                 every statsEvery (client disconnect ends the stream)
//	GET /stats     — one aggregate snapshot
//	GET /counters  — the substrate's raw counter snapshot
//
// The endpoint mirrors a BMP monitoring station's view: route events and
// aggregate meters, observed without participating.
type Server struct {
	feed *Feed
	ln   net.Listener
	srv  *http.Server
}

// hello is the first record of an /events stream.
type hello struct {
	Type  string `json:"type"`
	Proto string `json:"proto"`
	Since int64  `json:"uptimeMs"`
}

// Serve starts the telemetry endpoint on addr (host:port; port 0 picks a
// free one — read the result's Addr). It returns as soon as the listener
// is up; Close stops it.
func Serve(feed *Feed, addr string, statsEvery time.Duration) (*Server, error) {
	if statsEvery <= 0 {
		statsEvery = 2 * time.Second
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("telemetry: %w", err)
	}
	s := &Server{feed: feed, ln: ln}
	mux := http.NewServeMux()
	mux.HandleFunc("/events", func(w http.ResponseWriter, r *http.Request) {
		s.streamEvents(w, r, statsEvery)
	})
	mux.HandleFunc("/stats", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, feed.Stats())
	})
	mux.HandleFunc("/counters", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, feed.Stats().Counters)
	})
	s.srv = &http.Server{Handler: mux}
	go func() { _ = s.srv.Serve(ln) }()
	return s, nil
}

// Addr returns the listener's resolved address.
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close tears the endpoint down; live /events streams end.
func (s *Server) Close() error { return s.srv.Close() }

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	_ = enc.Encode(v)
}

// streamEvents serves one live NDJSON subscriber.
func (s *Server) streamEvents(w http.ResponseWriter, r *http.Request, statsEvery time.Duration) {
	fl, ok := w.(http.Flusher)
	if !ok {
		http.Error(w, "streaming unsupported", http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.Header().Set("Cache-Control", "no-store")

	ch, cancel := s.feed.Subscribe()
	defer cancel()

	write := func(v any) bool {
		line, err := json.Marshal(v)
		if err != nil {
			return false
		}
		if _, err := w.Write(append(line, '\n')); err != nil {
			return false
		}
		fl.Flush()
		return true
	}
	if !write(hello{Type: "hello", Proto: "ibgp-soak/1", Since: time.Since(s.feed.start).Milliseconds()}) {
		return
	}

	ticker := time.NewTicker(statsEvery)
	defer ticker.Stop()
	for {
		select {
		case <-r.Context().Done():
			return
		case <-ticker.C:
			if !write(s.feed.Stats()) {
				return
			}
		case line, ok := <-ch:
			if !ok {
				return
			}
			if _, err := w.Write(append(line, '\n')); err != nil {
				return
			}
			fl.Flush()
		}
	}
}
