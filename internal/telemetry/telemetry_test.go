package telemetry

import (
	"bufio"
	"encoding/json"
	"net/http"
	"testing"
	"time"

	"repro/internal/router"
	"repro/internal/wire"
)

func TestFeedCountsWithoutSubscribers(t *testing.T) {
	f := NewFeed()
	f.BindCounters(func() router.Snapshot { return router.Snapshot{Sent: 42, Received: 40, Rejected: 2} })
	f.Sink(router.Event{Kind: router.BestChanged, Node: 3, OldBest: 1, NewBest: 2})
	f.Sink(router.Event{Kind: router.UpdateSent, Node: 3, Peer: 4})
	f.RecordConvergence(10)
	f.RecordConvergence(30)
	f.RecordConvergence(20)

	st := f.Stats()
	if st.Events != 2 || st.Flaps != 1 {
		t.Fatalf("events %d flaps %d, want 2/1", st.Events, st.Flaps)
	}
	if st.Streamed != 0 || st.Dropped != 0 || st.Subscribers != 0 {
		t.Fatalf("no-subscriber feed streamed %d dropped %d subs %d", st.Streamed, st.Dropped, st.Subscribers)
	}
	if st.Counters.Sent != 42 {
		t.Fatalf("bound counters not served: %+v", st.Counters)
	}
	if c := st.Convergence; c.Count != 3 || c.P50 != 20 || c.Max != 30 {
		t.Fatalf("convergence %+v, want count 3 p50 20 max 30", c)
	}
}

func TestSubscribeStreamAndRecordShapes(t *testing.T) {
	f := NewFeed()
	ch, cancel := f.Subscribe()
	defer cancel()

	f.Sink(router.Event{Kind: router.Injected, Time: 7, Node: 2, Prefix: 1, Path: 3})
	f.Sink(router.Event{
		Kind: router.UpdateReceived, Time: 9, Node: 2, Peer: 5,
		Update: &wire.Update{Announced: make([]wire.RouteRecord, 2), Withdrawn: make([]wire.WithdrawnRoute, 1)},
	})
	f.Sink(router.Event{Kind: router.PeerDown, Time: 11, Node: 0, Peer: 1, Flushed: 6})

	var recs []map[string]any
	for i := 0; i < 3; i++ {
		select {
		case line := <-ch:
			var m map[string]any
			if err := json.Unmarshal(line, &m); err != nil {
				t.Fatalf("bad JSON line %q: %v", line, err)
			}
			recs = append(recs, m)
		case <-time.After(time.Second):
			t.Fatal("subscriber starved")
		}
	}
	if recs[0]["kind"] != "Injected" || recs[0]["prefix"] != float64(1) || recs[0]["path"] != float64(3) {
		t.Fatalf("Injected record %v", recs[0])
	}
	if recs[1]["kind"] != "UpdateReceived" || recs[1]["announced"] != float64(2) || recs[1]["withdrawn"] != float64(1) {
		t.Fatalf("UpdateReceived record %v", recs[1])
	}
	if _, has := recs[1]["flushed"]; has {
		t.Fatalf("UpdateReceived carries flushed: %v", recs[1])
	}
	if recs[2]["kind"] != "PeerDown" || recs[2]["flushed"] != float64(6) {
		t.Fatalf("PeerDown record %v", recs[2])
	}
	if st := f.Stats(); st.Streamed != 3 || st.Subscribers != 1 {
		t.Fatalf("streamed %d subs %d, want 3/1", st.Streamed, st.Subscribers)
	}
}

// TestSlowSubscriberDropsNotBlocks: a stalled subscriber loses events past
// its buffer instead of back-pressuring the router event path.
func TestSlowSubscriberDropsNotBlocks(t *testing.T) {
	f := NewFeed()
	_, cancel := f.Subscribe()
	defer cancel()
	done := make(chan struct{})
	go func() {
		for i := 0; i < subBuffer+50; i++ {
			f.Sink(router.Event{Kind: router.UpdateSent, Node: 1, Peer: 2})
		}
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Sink blocked on a stalled subscriber")
	}
	st := f.Stats()
	if st.Dropped != 50 || st.Streamed != subBuffer {
		t.Fatalf("streamed %d dropped %d, want %d/50", st.Streamed, st.Dropped, subBuffer)
	}
}

func TestCancelTwiceIsSafe(t *testing.T) {
	f := NewFeed()
	_, cancel := f.Subscribe()
	cancel()
	cancel()
	f.Sink(router.Event{Kind: router.UpdateSent}) // must not panic or count a sub
	if st := f.Stats(); st.Subscribers != 0 || st.Streamed != 0 {
		t.Fatalf("after cancel: %+v", st)
	}
}

// TestServerEndpoints drives the HTTP plane end to end: /stats and
// /counters serve JSON snapshots, /events streams the hello record, live
// events and periodic stats records.
func TestServerEndpoints(t *testing.T) {
	f := NewFeed()
	f.BindCounters(func() router.Snapshot { return router.Snapshot{Sent: 7} })
	srv, err := Serve(f, "127.0.0.1:0", 50*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	base := "http://" + srv.Addr()

	resp, err := http.Get(base + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	var st Stats
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if st.Type != "stats" || st.Counters.Sent != 7 {
		t.Fatalf("/stats returned %+v", st)
	}

	resp, err = http.Get(base + "/counters")
	if err != nil {
		t.Fatal(err)
	}
	var c router.Snapshot
	if err := json.NewDecoder(resp.Body).Decode(&c); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if c.Sent != 7 {
		t.Fatalf("/counters returned %+v", c)
	}

	resp, err = http.Get(base + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	sc := bufio.NewScanner(resp.Body)
	if !sc.Scan() {
		t.Fatal("no hello record")
	}
	var helloRec map[string]any
	if err := json.Unmarshal(sc.Bytes(), &helloRec); err != nil || helloRec["type"] != "hello" {
		t.Fatalf("first record %q (err %v)", sc.Text(), err)
	}

	f.Sink(router.Event{Kind: router.Withdrawn, Time: 3, Node: 1, Prefix: 0, Path: 2})
	sawEvent, sawStats := false, false
	deadline := time.After(5 * time.Second)
	lines := make(chan string, 16)
	go func() {
		for sc.Scan() {
			lines <- sc.Text()
		}
		close(lines)
	}()
	for !(sawEvent && sawStats) {
		select {
		case line, ok := <-lines:
			if !ok {
				t.Fatalf("stream ended early (event %v, stats %v)", sawEvent, sawStats)
			}
			var m map[string]any
			if err := json.Unmarshal([]byte(line), &m); err != nil {
				t.Fatalf("bad stream line %q: %v", line, err)
			}
			switch m["type"] {
			case "event":
				if m["kind"] == "Withdrawn" {
					sawEvent = true
				}
			case "stats":
				sawStats = true
			}
		case <-deadline:
			t.Fatalf("stream incomplete after 5s (event %v, stats %v)", sawEvent, sawStats)
		}
	}
}
