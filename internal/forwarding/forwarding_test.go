package forwarding

import (
	"strings"
	"testing"

	"repro/internal/bgp"
	"repro/internal/figures"
	"repro/internal/protocol"
	"repro/internal/selection"
	"repro/internal/topology"
	"repro/internal/workload"
)

func converged(t *testing.T, sys *topology.System, policy protocol.Policy) protocol.Snapshot {
	t.Helper()
	e := protocol.New(sys, policy, selection.Options{})
	res := protocol.Run(e, protocol.RoundRobin(sys.N()), protocol.RunOptions{MaxSteps: 5000})
	if res.Outcome != protocol.Converged {
		t.Fatalf("policy %v did not converge: %v", policy, res.Outcome)
	}
	return res.Final
}

func TestForwardExitsAtOwnRouter(t *testing.T) {
	f := figures.Fig12()
	snap := converged(t, f.Sys, protocol.Classic)
	plane := NewPlane(f.Sys, snap)
	// w's own best exits at w: a single-hop trace.
	tr := plane.Forward(f.Node("w"))
	if tr.Looped || tr.Blackholed || len(tr.Hops) != 1 || tr.ExitPath != f.Path("pw") {
		t.Fatalf("trace = %v", tr)
	}
	if !strings.Contains(tr.String(), "exit(") {
		t.Fatalf("String = %q", tr.String())
	}
}

func TestForwardDetectsLoop(t *testing.T) {
	f := figures.Fig14()
	snap := converged(t, f.Sys, protocol.Classic)
	plane := NewPlane(f.Sys, snap)
	tr := plane.Forward(f.Node("c1"))
	if !tr.Looped {
		t.Fatalf("expected loop, trace = %v", tr)
	}
	if tr.ExitPath != bgp.None {
		t.Fatal("looped trace must not report an exit")
	}
	if !strings.Contains(tr.String(), "LOOP") {
		t.Fatalf("String = %q", tr.String())
	}
	if plane.LoopFree() {
		t.Fatal("LoopFree on looping plane")
	}
}

func TestForwardBlackhole(t *testing.T) {
	// A node with no best route drops packets.
	f := figures.Fig14()
	snap := converged(t, f.Sys, protocol.Classic)
	snap.Best[f.Node("c1")] = bgp.None
	plane := NewPlane(f.Sys, snap)
	tr := plane.Forward(f.Node("c1"))
	if !tr.Blackholed || tr.Looped {
		t.Fatalf("trace = %v", tr)
	}
	if !strings.Contains(tr.String(), "BLACKHOLE") {
		t.Fatalf("String = %q", tr.String())
	}
}

func TestNextHopValues(t *testing.T) {
	f := figures.Fig14()
	snap := converged(t, f.Sys, protocol.Modified)
	plane := NewPlane(f.Sys, snap)
	// RR1's best is its own exit.
	if nh := plane.NextHop(f.Node("RR1")); nh != -1 {
		t.Fatalf("NextHop(RR1) = %d, want -1 (exits here)", nh)
	}
	// c1's best (r2) exits at RR2, direct physical neighbour.
	if nh := plane.NextHop(f.Node("c1")); nh != f.Node("RR2") {
		t.Fatalf("NextHop(c1) = %d, want RR2", nh)
	}
}

func TestLemma76HoldsOnModifiedFigures(t *testing.T) {
	for _, fig := range []*figures.Fig{figures.Fig1a(), figures.Fig2(), figures.Fig3(), figures.Fig12(), figures.Fig14()} {
		snap := converged(t, fig.Sys, protocol.Modified)
		plane := NewPlane(fig.Sys, snap)
		if bad := plane.CheckLemma76(); len(bad) != 0 {
			t.Fatalf("Lemma 7.6 violations under modified protocol: %v", bad)
		}
		if !plane.LoopFree() {
			t.Fatalf("loops under modified protocol: %v", plane.Loops())
		}
	}
}

func TestLemma77OnZeroExitCostSystem(t *testing.T) {
	// Fig2 has all exit costs zero and strictly positive edge costs: the
	// stronger Lemma 7.7 applies to the modified protocol's outcome.
	f := figures.Fig2()
	snap := converged(t, f.Sys, protocol.Modified)
	plane := NewPlane(f.Sys, snap)
	if bad := plane.CheckLemma77(); len(bad) != 0 {
		t.Fatalf("Lemma 7.7 violations: %v", bad)
	}
}

func TestLemma76MetricTieEdgeCase(t *testing.T) {
	// Discovered during reproduction: Lemma 7.6's proof dismisses the
	// equal-metric case assuming route-intrinsic tie-breaks. With
	// peer-dependent learnedFrom, workload system Default(4)/seed 6
	// resolves an exact metric tie differently at two routers, deflecting
	// a packet (legally — no loop) in violation of the lemma's literal
	// statement. Unique tie-break values restore the strict lemma.
	sys := workload.MustGenerate(workload.Default(4), 6)
	e := protocol.New(sys, protocol.Modified, selection.Options{})
	res := protocol.Run(e, protocol.RoundRobin(sys.N()), protocol.RunOptions{MaxSteps: 6000})
	if res.Outcome != protocol.Converged {
		t.Fatalf("outcome %v", res.Outcome)
	}
	plane := NewPlane(sys, res.Final)
	rep := plane.CheckLemma76Detailed()
	if len(rep.Strict) != 0 {
		t.Fatalf("strict violations: %v", rep.Strict)
	}
	if len(rep.MetricTies) == 0 {
		t.Fatal("expected the known equal-metric deflection; workload generator changed?")
	}
	if !plane.LoopFree() {
		t.Fatal("deflection must not loop")
	}
	// With route-intrinsic tie-breaks the strict statement holds.
	spec := topology.ToSpec(sys)
	for i := range spec.Exits {
		spec.Exits[i].TieBreak = 10000 + i
	}
	tb, err := topology.BuildSpec(spec)
	if err != nil {
		t.Fatal(err)
	}
	e2 := protocol.New(tb, protocol.Modified, selection.Options{})
	res2 := protocol.Run(e2, protocol.RoundRobin(tb.N()), protocol.RunOptions{MaxSteps: 6000})
	if res2.Outcome != protocol.Converged {
		t.Fatalf("tie-broken outcome %v", res2.Outcome)
	}
	if bad := NewPlane(tb, res2.Final).CheckLemma76(); len(bad) != 0 {
		t.Fatalf("tie-broken system still violates: %v", bad)
	}
}

func TestLemma76ReportsViolation(t *testing.T) {
	// Manufacture a snapshot violating 7.6: on Fig2, force RR1 onto r1
	// (exit c1, path RR1->...->c1) while an intermediate node picks a
	// different non-own exit. SP(RR1, c1) = RR1-RR2?-... — actually
	// RR1-c1 edge cost 10 vs RR1-RR2-c1 = 11, so SP is the direct edge and
	// there is no intermediate. Use Fig14 instead: SP(c1, RR1) passes
	// through c2; force c2 onto r2 while c1 is on r1 — the classic loop,
	// which 7.6 flags because c2 is not r1's exit nor on its own exit.
	f := figures.Fig14()
	snap := converged(t, f.Sys, protocol.Classic)
	plane := NewPlane(f.Sys, snap)
	if bad := plane.CheckLemma76(); len(bad) == 0 {
		t.Fatal("classic Fig14 should violate Lemma 7.6's conclusion")
	}
}
