// Package forwarding computes the *real* routes of Section 7: the
// hop-by-hop paths packets actually take, which may differ from the path
// the source believes they take because every intermediate router forwards
// according to its own best route (Figure 12). It detects the routing loops
// of Figure 14 and checks the loop-freedom guarantees of Lemmas 7.6/7.7.
package forwarding

import (
	"fmt"
	"strings"

	"repro/internal/bgp"
	"repro/internal/protocol"
	"repro/internal/topology"
)

// Hop is one step of a real route.
type Hop struct {
	Node bgp.NodeID
	// Exit is the exit path by which Node leaves AS0, or bgp.None when the
	// packet is handed to the next hop inside the AS.
	Exit bgp.PathID
}

// Trace is the outcome of forwarding one packet from a source router.
type Trace struct {
	Source bgp.NodeID
	Hops   []Hop
	// Looped is true when the packet revisited a router (a forwarding
	// loop); ExitPath is then bgp.None.
	Looped bool
	// Blackholed is true when some router on the way had no best route or
	// no IGP path to its exit point.
	Blackholed bool
	// ExitPath is the exit path by which the packet left AS0, when it did.
	ExitPath bgp.PathID
}

// String renders the trace as v0 -> v2 -> exit(p3).
func (t Trace) String() string {
	var b strings.Builder
	for i, h := range t.Hops {
		if i > 0 {
			b.WriteString(" -> ")
		}
		fmt.Fprintf(&b, "v%d", h.Node)
	}
	switch {
	case t.Looped:
		b.WriteString(" -> LOOP")
	case t.Blackholed:
		b.WriteString(" -> BLACKHOLE")
	default:
		fmt.Fprintf(&b, " -> exit(p%d)", t.ExitPath)
	}
	return b.String()
}

// Plane captures the forwarding decisions implied by a routing snapshot:
// each router forwards toward the exit point of its own best route along
// its deterministic IGP shortest path.
type Plane struct {
	sys  *topology.System
	best []bgp.PathID
}

// NewPlane builds a forwarding plane from a protocol snapshot.
func NewPlane(sys *topology.System, snap protocol.Snapshot) *Plane {
	return &Plane{sys: sys, best: append([]bgp.PathID(nil), snap.Best...)}
}

// NextHop returns the router u hands packets for d to, or -1 when u exits
// the AS itself (its best route's exit point is u) and -2 when u drops the
// packet (no route, or exit unreachable).
func (p *Plane) NextHop(u bgp.NodeID) bgp.NodeID {
	id := p.best[u]
	if id == bgp.None {
		return -2
	}
	exit := p.sys.Exit(id).ExitPoint
	if exit == u {
		return -1
	}
	nh := p.sys.Paths().NextHop(u, exit)
	if nh < 0 {
		return -2
	}
	return nh
}

// Forward traces a packet injected at source u to destination d.
func (p *Plane) Forward(u bgp.NodeID) Trace {
	t := Trace{Source: u}
	visited := make(map[bgp.NodeID]bool)
	cur := u
	for {
		if visited[cur] {
			t.Looped = true
			t.ExitPath = bgp.None
			return t
		}
		visited[cur] = true
		nh := p.NextHop(cur)
		switch nh {
		case -1:
			t.Hops = append(t.Hops, Hop{Node: cur, Exit: p.best[cur]})
			t.ExitPath = p.best[cur]
			return t
		case -2:
			t.Hops = append(t.Hops, Hop{Node: cur, Exit: bgp.None})
			t.Blackholed = true
			t.ExitPath = bgp.None
			return t
		default:
			t.Hops = append(t.Hops, Hop{Node: cur, Exit: bgp.None})
			cur = nh
		}
	}
}

// Loops returns the sources whose packets loop inside the AS.
func (p *Plane) Loops() []bgp.NodeID {
	var out []bgp.NodeID
	for u := 0; u < p.sys.N(); u++ {
		if p.Forward(bgp.NodeID(u)).Looped {
			out = append(out, bgp.NodeID(u))
		}
	}
	return out
}

// LoopFree reports whether no source's packets loop.
func (p *Plane) LoopFree() bool { return len(p.Loops()) == 0 }

// Lemma76Report separates genuine violations of Lemma 7.6 from the known
// equal-metric edge case.
//
// The paper's proof of Lemma 7.6 dismisses its Condition 3 (equal metric
// at the intermediate router, decided by learnedFrom) by arguing the same
// tie would resolve the same way at the source. That argument implicitly
// assumes learnedFrom is intrinsic to the route — as in the Section 5
// construction, where each route carries a "uniquely defined integer". In
// the operational protocol learnedFrom is the *announcing peer's* BGP
// identifier, which differs from router to router, so two routers can
// resolve an exact metric tie differently. The packet then deflects to the
// intermediate router's (equally good) exit; no loop arises, but the
// lemma's literal conclusion fails. MetricTies records those cases; Strict
// records everything else, which the lemma genuinely forbids.
type Lemma76Report struct {
	Strict     []string
	MetricTies []string
}

// CheckLemma76 verifies the statement of Lemma 7.6 on the snapshot: for
// every router u with best route exiting at v, every intermediate node w on
// SP(u, v) either selects the same exit path as u or is itself the exit
// point of its own best route. It returns the list of violations,
// including the equal-metric tie deflections (see Lemma76Report).
func (p *Plane) CheckLemma76() []string {
	r := p.CheckLemma76Detailed()
	return append(append([]string(nil), r.Strict...), r.MetricTies...)
}

// CheckLemma76Detailed classifies Lemma 7.6 violations (see Lemma76Report).
func (p *Plane) CheckLemma76Detailed() Lemma76Report {
	var rep Lemma76Report
	for u := 0; u < p.sys.N(); u++ {
		uid := bgp.NodeID(u)
		id := p.best[u]
		if id == bgp.None {
			continue
		}
		exit := p.sys.Exit(id)
		v := exit.ExitPoint
		for _, w := range p.sys.Paths().Path(uid, v) {
			if w == uid || w == v {
				continue
			}
			wb := p.best[w]
			if wb == id {
				continue
			}
			if wb != bgp.None && p.sys.Exit(wb).ExitPoint == w {
				continue
			}
			msg := fmt.Sprintf("u=v%d exit=p%d intermediate w=v%d picks p%d", u, id, w, wb)
			if wb != bgp.None && p.sys.Metric(w, p.sys.Exit(wb)) == p.sys.Metric(w, exit) {
				rep.MetricTies = append(rep.MetricTies, msg)
			} else {
				rep.Strict = append(rep.Strict, msg)
			}
		}
	}
	return rep
}

// CheckLemma77 verifies the stronger statement of Lemma 7.7, which holds
// when all exit costs are zero and all IGP edge costs are strictly
// positive: every node w on SP(u, exitPoint(best(u))) selects the same exit
// path as u. It returns the list of violations.
func (p *Plane) CheckLemma77() []string {
	var bad []string
	for u := 0; u < p.sys.N(); u++ {
		uid := bgp.NodeID(u)
		id := p.best[u]
		if id == bgp.None {
			continue
		}
		v := p.sys.Exit(id).ExitPoint
		for _, w := range p.sys.Paths().Path(uid, v) {
			if w == uid {
				continue
			}
			if p.best[w] != id {
				bad = append(bad, fmt.Sprintf("u=v%d exit=p%d node w=v%d picks p%d", u, id, w, p.best[w]))
			}
		}
	}
	return bad
}
