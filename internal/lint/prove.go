package lint

import (
	"fmt"
	"strings"

	"repro/internal/bgp"
	"repro/internal/protocol"
	"repro/internal/sat"
	"repro/internal/selection"
	"repro/internal/topology"
)

// The prove passes make lint exact, in the sense of Section 5: instead of
// pattern-matching sufficient oscillation preconditions they encode the
// existence of a stable routing as CNF and decide it with the SAT solver
// the NP-completeness reduction already ships.
//
// The encoding works over the *core* of the system: reflectors plus
// routers owning an exit path. A client without exits can never influence
// any other router — the Transfer relation only lets a client's own-exit
// routes flow upward, and such a client has none — so its stable selection
// is a deterministic function of its peers' advertisements and the full
// system has a stable routing iff the core does.
//
// Per core router u and receivable path p the choice variable x[u,p] says
// "u stably selects (and, under classic I-BGP, advertises) p". Visibility
// and the selection rules then become defined variables:
//
//	vis[u,p]     ⇔  p is u's own exit, or some peer w with Transfers(w,u,p)
//	                has x[w,p]                     (one clause per advertiser)
//	surv_k[u,p]  ⇔  surv_{k-1}[u,p] ∧ ⋀_q ¬surv_{k-1}[u,q]  over the static
//	                stage-k "killers" q of p: higher LocalPref (rule 1),
//	                shorter AS path (rule 2), same-AS lower MED (rule 3,
//	                the visibility-dependent elimination of Figure 1(a)),
//	                E-BGP over I-BGP (rule 4), lower IGP metric (rule 5)
//	x[u,p]       ⇒  surv_5[u,p], exactly one choice per router (or none,
//	                exactly when nothing is visible), and for every pair
//	                that can tie through rule 5 a learnedFrom comparison
//	                expanded over the possible advertiser sets (rule 6).
//
// A stage whose killer set is empty reuses the previous stage's variable,
// so uniform-attribute families (one LocalPref, one AS-path length) cost
// nothing for rules 1-2. Models of the formula correspond exactly to the
// stable advertisement assignments the engine's InducedConfig fixed-point
// check accepts, which is what the replay verification (and the witness
// replay test) exercises.
type proveIndex struct {
	sys      *topology.System
	speakers []bgp.NodeID     // reflectors + exit owners, ascending
	spIdx    []int            // node -> speaker index, -1 outside the core
	cand     [][]bgp.ExitPath // receivable paths per speaker, ascending ID
	candPos  [][]int          // candPos[si][pathID] = index into cand[si], -1 absent
	advs     [][][]int        // advs[si][ci]: speakers that can transfer cand[si][ci] to speaker si
	metric   [][]int64        // metric[si][ci] = IGP metric of the candidate at the speaker

	enc    *stableEncoding
	model  []bool
	sat    bool
	choice []bgp.PathID // decoded stable selection per speaker (bgp.None: none)
	stats  sat.Stats
}

// stableEncoding is the CNF plus the variable maps needed to decode a
// model back into route choices.
type stableEncoding struct {
	f     *sat.Formula
	x     [][]int // choice variable per (speaker, candidate)
	xNone []int   // "selects nothing" per speaker
	surv  [][]int // final-stage survivor variable per (speaker, candidate)
}

// Witness is machine-checkable evidence attached to a prover finding.
type Witness struct {
	// Config maps every router name to its stable selection ("p3", or
	// "none"), decoded from the SAT model and completed through the
	// protocol engine for routers outside the encoding core.
	Config map[string]string `json:"config,omitempty"`
	// Alt is a second, distinct stable configuration (prove-wheel).
	Alt map[string]string `json:"alt,omitempty"`
	// Wheel is the dispute wheel connecting Config and Alt: a dependency
	// cycle of routers whose selections differ between the two stable
	// routings, each router's flip caused by the next one's.
	Wheel []WheelSpoke `json:"wheel,omitempty"`
}

// WheelSpoke is one router on the dispute wheel, with its selections in
// the two stable configurations.
type WheelSpoke struct {
	Node string `json:"node"`
	Hold string `json:"hold"` // selection in Config
	Alt  string `json:"alt"`  // selection in Alt
}

// pathLabel renders a selection as p<ID> or "none".
func pathLabel(id bgp.PathID) string {
	if id == bgp.None {
		return "none"
	}
	return fmt.Sprintf("p%d", id)
}

// proveIndexOnce builds (once per Context) the core index, the stable-
// configuration CNF, and its first solver outcome, shared by both prover
// passes.
func (ctx *Context) proveIndexOnce() *proveIndex {
	ctx.proveOnce.Do(func() {
		idx := buildProveIndex(ctx.Sys)
		idx.enc = encodeStable(idx)
		idx.model, idx.sat = sat.SolveStats(idx.enc.f, &idx.stats)
		if idx.sat {
			idx.choice = decodeChoice(idx, idx.model)
		}
		ctx.prove = idx
	})
	return ctx.prove
}

func buildProveIndex(sys *topology.System) *proveIndex {
	n := sys.N()
	idx := &proveIndex{sys: sys, spIdx: make([]int, n)}
	// Witness replay runs the engine over the full system, whose route
	// metrics draw from every node; warm the lazy IGP trees here, while
	// the build is still single-threaded, so the concurrent passes only
	// ever read them.
	for u := 0; u < n; u++ {
		sys.Paths().From(bgp.NodeID(u))
	}
	for u := 0; u < n; u++ {
		id := bgp.NodeID(u)
		if sys.Role(id) == topology.Reflector || len(sys.MyExits(id)) > 0 {
			idx.spIdx[u] = len(idx.speakers)
			idx.speakers = append(idx.speakers, id)
		} else {
			idx.spIdx[u] = -1
		}
	}
	exits := sys.Exits()
	idx.cand = make([][]bgp.ExitPath, len(idx.speakers))
	idx.candPos = make([][]int, len(idx.speakers))
	idx.metric = make([][]int64, len(idx.speakers))
	for si, u := range idx.speakers {
		pos := make([]int, len(exits))
		for i := range pos {
			pos[i] = -1
		}
		for _, p := range exits { // ascending PathID
			receivable := p.ExitPoint == u
			if !receivable {
				for _, w := range sys.Peers(u) {
					if sys.Transfers(w, u, p) {
						receivable = true
						break
					}
				}
			}
			if receivable {
				pos[p.ID] = len(idx.cand[si])
				idx.cand[si] = append(idx.cand[si], p)
				idx.metric[si] = append(idx.metric[si], sys.Metric(u, p))
			}
		}
		idx.candPos[si] = pos
	}
	// Advertiser lists: which core peers can transfer each candidate in.
	// Peer lists are sorted, so the encoding is deterministic.
	idx.advs = make([][][]int, len(idx.speakers))
	for si, u := range idx.speakers {
		idx.advs[si] = make([][]int, len(idx.cand[si]))
		for ci, p := range idx.cand[si] {
			if p.ExitPoint == u {
				continue // own exits are unconditionally visible
			}
			for _, w := range sys.Peers(u) {
				sj := idx.spIdx[w]
				if sj >= 0 && idx.candPos[sj][p.ID] >= 0 && sys.Transfers(w, u, p) {
					idx.advs[si][ci] = append(idx.advs[si][ci], sj)
				}
			}
		}
	}
	return idx
}

// constLF returns the learnedFrom value of p at u when it does not depend
// on which peers advertise p: own exits use the external next hop (or the
// fixed tie-break), and any path with a fixed tie-break uses it. Otherwise
// learnedFrom is the minimum BGP identifier over the active advertisers —
// a variable quantity the tie-break clauses expand over.
func constLF(u bgp.NodeID, p bgp.ExitPath) (int, bool) {
	if p.TieBreak >= 0 {
		return p.TieBreak, true
	}
	if p.ExitPoint == u {
		return p.NextHopID, true
	}
	return 0, false
}

func encodeStable(idx *proveIndex) *stableEncoding {
	sys := idx.sys
	enc := &stableEncoding{
		x:     make([][]int, len(idx.speakers)),
		xNone: make([]int, len(idx.speakers)),
		surv:  make([][]int, len(idx.speakers)),
	}
	nv := 0
	newVar := func() int { nv++; return nv }
	var cls []sat.Clause
	add := func(ls ...sat.Literal) { cls = append(cls, sat.Clause(ls)) }
	pos := func(v int) sat.Literal { return sat.Literal(v) }
	neg := func(v int) sat.Literal { return sat.Literal(-v) }

	// Phase 1: allocate every choice variable, so visibility clauses can
	// reference other speakers' choices.
	for si := range idx.speakers {
		enc.x[si] = make([]int, len(idx.cand[si]))
		for ci := range idx.cand[si] {
			enc.x[si][ci] = newVar()
		}
		enc.xNone[si] = newVar()
	}

	// Phase 2: per-speaker visibility, the five filter stages, and the
	// choice constraints.
	for si, u := range idx.speakers {
		cands := idx.cand[si]
		nc := len(cands)
		own := make([]bool, nc)
		for ci, p := range cands {
			own[ci] = p.ExitPoint == u
		}

		vis := make([]int, nc)
		for ci, p := range cands {
			v := newVar()
			vis[ci] = v
			if own[ci] {
				add(pos(v)) // active exits are always visible to their owner
				continue
			}
			rev := sat.Clause{neg(v)}
			for _, sj := range idx.advs[si][ci] {
				xw := enc.x[sj][idx.candPos[sj][p.ID]]
				add(pos(v), neg(xw)) // an active advertiser makes p visible
				rev = append(rev, pos(xw))
			}
			add(rev...) // visibility needs an active advertiser
		}

		// killers returns the candidates that eliminate cands[ci] at the
		// given stage, assuming both survived the stage before. Killers
		// whose earlier attributes differ are omitted: co-survival with p
		// is then already impossible, so the clause would be vacuous.
		killers := func(stage, ci int) []int {
			p := cands[ci]
			var ks []int
			for cj, q := range cands {
				if cj == ci {
					continue
				}
				eq12 := q.LocalPref == p.LocalPref && q.ASPathLen == p.ASPathLen
				kill := false
				switch stage {
				case 1:
					kill = q.LocalPref > p.LocalPref
				case 2:
					kill = q.LocalPref == p.LocalPref && q.ASPathLen < p.ASPathLen
				case 3:
					kill = eq12 && q.NextAS == p.NextAS && q.MED < p.MED
				case 4:
					kill = eq12 && own[cj] && !own[ci]
				case 5:
					kill = eq12 && own[cj] == own[ci] && idx.metric[si][cj] < idx.metric[si][ci]
				}
				if kill {
					ks = append(ks, cj)
				}
			}
			return ks
		}

		cur := vis
		for stage := 1; stage <= 5; stage++ {
			next := make([]int, nc)
			for ci := range cands {
				ks := killers(stage, ci)
				if len(ks) == 0 {
					next[ci] = cur[ci] // stage is a no-op for this path
					continue
				}
				v := newVar()
				add(neg(v), pos(cur[ci]))
				rev := sat.Clause{pos(v), neg(cur[ci])}
				for _, cj := range ks {
					add(neg(v), neg(cur[cj]))
					rev = append(rev, pos(cur[cj]))
				}
				add(rev...)
				next[ci] = v
			}
			cur = next
		}
		surv := cur
		enc.surv[si] = surv

		// A choice must survive every filter; at most one choice; at
		// least one choice or the explicit none; none exactly when
		// nothing is visible.
		for ci := range cands {
			add(neg(enc.x[si][ci]), pos(surv[ci]))
		}
		for ci := 0; ci < nc; ci++ {
			for cj := ci + 1; cj < nc; cj++ {
				add(neg(enc.x[si][ci]), neg(enc.x[si][cj]))
			}
		}
		alo := sat.Clause{pos(enc.xNone[si])}
		noneRev := sat.Clause{pos(enc.xNone[si])}
		for ci := range cands {
			alo = append(alo, pos(enc.x[si][ci]))
			add(neg(enc.xNone[si]), neg(vis[ci]))
			noneRev = append(noneRev, pos(vis[ci]))
		}
		add(alo...)
		add(noneRev...)

		// Rule-6 tie-breaks: for every ordered pair that can reach the
		// final stage together (same rule 1-5 attributes), the chosen
		// path must win the (learnedFrom, PathID) comparison. Variable
		// learnedFrom values expand over the advertiser BGP identifiers.
		coSurvivable := func(ci, cj int) bool {
			p, q := cands[ci], cands[cj]
			return p.LocalPref == q.LocalPref && p.ASPathLen == q.ASPathLen &&
				own[ci] == own[cj] && idx.metric[si][ci] == idx.metric[si][cj] &&
				(p.NextAS != q.NextAS || p.MED == q.MED)
		}
		bid := func(sj int) int { return sys.BGPID(idx.speakers[sj]) }
		for ci := range cands {
			for cj := range cands {
				if ci == cj || !coSurvivable(ci, cj) {
					continue
				}
				p, q := cands[ci], cands[cj]
				// p (chosen) beats q iff lf(p) <= lf(q) - d.
				d := 1
				if p.ID < q.ID {
					d = 0
				}
				lfP, constP := constLF(u, p)
				lfQ, constQ := constLF(u, q)
				base := sat.Clause{neg(enc.x[si][ci]), neg(surv[cj])}
				switch {
				case constP && constQ:
					if lfP > lfQ-d {
						add(base...)
					}
				case constP:
					// q's learnedFrom is the minimum active advertiser
					// id; forbid any active advertiser beating lfP.
					for _, sj := range idx.advs[si][cj] {
						if bid(sj) < lfP+d {
							cl := append(append(sat.Clause{}, base...),
								neg(enc.x[sj][idx.candPos[sj][q.ID]]))
							add(cl...)
						}
					}
				case constQ:
					// p needs an active advertiser at least as good as
					// lfQ - d.
					cl := append(sat.Clause{}, base...)
					for _, sj := range idx.advs[si][ci] {
						if bid(sj) <= lfQ-d {
							cl = append(cl, pos(enc.x[sj][idx.candPos[sj][p.ID]]))
						}
					}
					add(cl...)
				default:
					// Both variable: for every active advertiser of q, p
					// must have an active advertiser beating it.
					for _, sjq := range idx.advs[si][cj] {
						cl := append(append(sat.Clause{}, base...),
							neg(enc.x[sjq][idx.candPos[sjq][q.ID]]))
						for _, sjp := range idx.advs[si][ci] {
							if bid(sjp) <= bid(sjq)-d {
								cl = append(cl, pos(enc.x[sjp][idx.candPos[sjp][p.ID]]))
							}
						}
						add(cl...)
					}
				}
			}
		}
	}
	enc.f = &sat.Formula{NumVars: nv, Clauses: cls}
	return enc
}

// decodeChoice reads the per-speaker selection out of a model.
func decodeChoice(idx *proveIndex, model []bool) []bgp.PathID {
	choice := make([]bgp.PathID, len(idx.speakers))
	for si := range idx.speakers {
		choice[si] = bgp.None
		for ci, p := range idx.cand[si] {
			if model[idx.enc.x[si][ci]] {
				choice[si] = p.ID
				break
			}
		}
	}
	return choice
}

// realize replays a per-speaker choice through the protocol engine: core
// routers advertise their decoded selections, every other router's
// response is induced, and the resulting full assignment is checked to be
// a true protocol fixed point. It returns the full configuration (per
// router name) and whether the fixed-point check passed.
func realize(idx *proveIndex, choice []bgp.PathID) (map[string]string, bool) {
	sys := idx.sys
	e := protocol.New(sys, protocol.Classic, selection.Options{})
	n := sys.N()
	adv := make([]bgp.PathSet, n)
	for si, u := range idx.speakers {
		adv[u].Add(choice[si])
	}
	e.InducedConfig(adv)
	full := make([]bgp.PathSet, n)
	for u := 0; u < n; u++ {
		full[u] = e.Advertised(bgp.NodeID(u))
	}
	ok := e.InducedConfig(full) && e.Stable()
	cfg := make(map[string]string, n)
	for u := 0; u < n; u++ {
		id := bgp.NodeID(u)
		sel := bgp.None
		if ids := full[u].IDs(); len(ids) > 0 {
			sel = ids[0]
		}
		cfg[sys.Name(id)] = pathLabel(sel)
	}
	return cfg, ok
}

// decodeWheel extracts the dispute wheel between two distinct stable
// configurations: every router whose selection differs must have a peer
// whose *transferred* advertisement differs (selection is a deterministic
// function of the transferred inputs), so the cause pointers over the
// differing set contain a cycle — the wheel.
func decodeWheel(idx *proveIndex, c1, c2 []bgp.PathID) []WheelSpoke {
	sys := idx.sys
	start := -1
	for si := range idx.speakers {
		if c1[si] != c2[si] {
			start = si
			break
		}
	}
	if start < 0 {
		return nil
	}
	cause := func(si int) int {
		u := idx.speakers[si]
		for _, w := range sys.Peers(u) {
			sj := idx.spIdx[w]
			if sj < 0 || c1[sj] == c2[sj] {
				continue
			}
			t1, t2 := bgp.None, bgp.None
			if c1[sj] != bgp.None && sys.Transfers(w, u, sys.Exit(c1[sj])) {
				t1 = c1[sj]
			}
			if c2[sj] != bgp.None && sys.Transfers(w, u, sys.Exit(c2[sj])) {
				t2 = c2[sj]
			}
			if t1 != t2 {
				return sj
			}
		}
		return -1
	}
	visited := make(map[int]int)
	var path []int
	for si := start; ; si = cause(si) {
		if si < 0 {
			return nil
		}
		if at, ok := visited[si]; ok {
			cycle := path[at:]
			spokes := make([]WheelSpoke, len(cycle))
			for i, sj := range cycle {
				spokes[i] = WheelSpoke{
					Node: sys.Name(idx.speakers[sj]),
					Hold: pathLabel(c1[sj]),
					Alt:  pathLabel(c2[sj]),
				}
			}
			return spokes
		}
		visited[si] = len(path)
		path = append(path, si)
	}
}

// proveStablePass decides, exactly, whether any stable routing exists.
// UNSAT is a proof of persistent oscillation (the Section 5 decision
// problem answered "no"); SAT yields a replay-verified stable
// configuration as an Info certificate.
func proveStablePass() Pass {
	p := Pass{
		Name:  "prove-stable",
		Doc:   "SAT-exact existence of a stable routing; UNSAT proves persistent oscillation",
		Ref:   "Section 5, STABLE I-BGP WITH ROUTE REFLECTION",
		Exact: true,
	}
	p.System = func(ctx *Context) []Finding {
		idx := ctx.proveIndexOnce()
		if !idx.sat {
			return []Finding{{
				Pass: p.Name, Severity: Risk, Ref: p.Ref,
				Detail: fmt.Sprintf(
					"no stable routing exists: the stable-configuration CNF (%d speakers, %d variables, %d clauses; %d decisions) "+
						"is unsatisfiable, so every activation schedule oscillates forever",
					len(idx.speakers), idx.enc.f.NumVars, len(idx.enc.f.Clauses), idx.stats.Decisions),
			}}
		}
		cfg, ok := realize(idx, idx.choice)
		if !ok {
			// Should be unreachable: models correspond to fixed points by
			// construction. Stay conservative rather than certify safety.
			return []Finding{{
				Pass: p.Name, Severity: Risk, Ref: p.Ref,
				Detail: "internal: SAT model failed engine replay; treating the configuration as at risk",
			}}
		}
		return []Finding{{
			Pass: p.Name, Severity: Info, Ref: p.Ref,
			Witness: &Witness{Config: cfg},
			Detail: fmt.Sprintf(
				"a stable routing exists (%d variables, %d clauses, %d decisions); the decoded configuration replays as a protocol fixed point",
				idx.enc.f.NumVars, len(idx.enc.f.Clauses), idx.stats.Decisions),
		}}
	}
	return p
}

// proveWheelPass asks the solver for a *second* stable routing. Two
// distinct stable solutions imply a dispute wheel between them (the
// Figure 2 structure: outcomes depend on the activation schedule, and
// synchronous runs can oscillate between the solutions), which the pass
// decodes into a concrete cycle witness. A unique stable routing yields
// an Info certificate instead.
func proveWheelPass() Pass {
	p := Pass{
		Name:  "prove-wheel",
		Doc:   "SAT-exact dispute wheel: a second stable routing makes outcomes schedule-dependent",
		Ref:   "Section 3, Figure 2; Section 5",
		Exact: true,
	}
	p.System = func(ctx *Context) []Finding {
		idx := ctx.proveIndexOnce()
		if !idx.sat {
			return nil // prove-stable already proves persistent oscillation
		}
		// Block the first model's per-speaker choices and re-solve.
		block := make(sat.Clause, 0, len(idx.speakers))
		for si := range idx.speakers {
			v := idx.enc.xNone[si]
			if idx.choice[si] != bgp.None {
				v = idx.enc.x[si][idx.candPos[si][idx.choice[si]]]
			}
			block = append(block, sat.Literal(-v))
		}
		f2 := &sat.Formula{
			NumVars: idx.enc.f.NumVars,
			Clauses: append(append([]sat.Clause{}, idx.enc.f.Clauses...), block),
		}
		model2, sat2 := sat.Solve(f2)
		if !sat2 {
			return []Finding{{
				Pass: p.Name, Severity: Info, Ref: p.Ref,
				Detail: "the stable routing is unique: no second stable solution exists, so no dispute wheel connects stable outcomes",
			}}
		}
		choice2 := decodeChoice(idx, model2)
		cfg1, ok1 := realize(idx, idx.choice)
		cfg2, ok2 := realize(idx, choice2)
		w := &Witness{Config: cfg1, Alt: cfg2, Wheel: decodeWheel(idx, idx.choice, choice2)}
		f := Finding{
			Pass: p.Name, Severity: Risk, Ref: p.Ref,
			Witness: w,
		}
		var names []string
		for _, s := range w.Wheel {
			names = append(names, s.Node)
		}
		f.Nodes = names
		switch {
		case !ok1 || !ok2:
			f.Detail = "internal: a decoded stable routing failed engine replay; treating the configuration as at risk"
		case len(w.Wheel) > 0:
			f.Detail = fmt.Sprintf(
				"two distinct stable routings exist; dispute wheel %s: each router's selection flip is caused by the next one's, "+
					"so the outcome depends on the activation schedule (the Figure 2 phenomenon)",
				strings.Join(names, " -> "))
		default:
			f.Detail = "two distinct stable routings exist: the outcome depends on the activation schedule (the Figure 2 phenomenon)"
		}
		return []Finding{f}
	}
	return p
}
