package lint

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/bgp"
	"repro/internal/topology"
)

// pathNames renders exit paths as p<ID> labels.
func pathNames(ps []bgp.ExitPath) []string {
	out := make([]string, len(ps))
	for i, p := range ps {
		out[i] = fmt.Sprintf("p%d", p.ID)
	}
	return out
}

// medInteractionPass detects the Figure 1(a) precondition: among the
// routes that survive selection rules 1-2, some neighbouring AS announces
// routes with *different* MED values whose exit points sit in *different*
// clusters. Then which routes survive the MED comparison at a reflector
// depends on which routes it currently sees — the visibility toggling that
// drives the paper's persistent oscillations — while the conflicting IGP
// metrics of distinct clusters keep the reflectors disagreeing.
//
// The condition is sufficient for risk, not for certain divergence:
// deciding actual stability is NP-complete (Section 5), which is exactly
// why the linter settles for the cheap precondition.
func medInteractionPass() Pass {
	p := Pass{
		Name: "med-cluster-interaction",
		Doc:  "per-AS MED conflict across clusters (the Fig 1(a) oscillation precondition)",
		Ref:  "Section 3, Figure 1(a); Section 5",
	}
	p.System = func(ctx *Context) []Finding {
		sys, cands := ctx.Sys, ctx.Cands
		// Group by neighbouring AS, preserving first-seen order.
		byAS := map[bgp.ASN][]bgp.ExitPath{}
		var asns []bgp.ASN
		for _, e := range cands {
			if _, ok := byAS[e.NextAS]; !ok {
				asns = append(asns, e.NextAS)
			}
			byAS[e.NextAS] = append(byAS[e.NextAS], e)
		}
		sort.Slice(asns, func(i, j int) bool { return asns[i] < asns[j] })
		var out []Finding
		for _, as := range asns {
			group := byAS[as]
			meds := map[int]bool{}
			clusters := map[int]bool{}
			nodes := map[string]bool{}
			for _, e := range group {
				meds[e.MED] = true
				clusters[sys.Cluster(e.ExitPoint)] = true
				nodes[sys.Name(e.ExitPoint)] = true
			}
			if len(meds) < 2 || len(clusters) < 2 {
				continue
			}
			names := make([]string, 0, len(nodes))
			for n := range nodes {
				names = append(names, n)
			}
			sort.Strings(names)
			out = append(out, Finding{
				Pass: p.Name, Severity: Risk, Ref: p.Ref,
				Nodes: names,
				Paths: pathNames(group),
				Detail: fmt.Sprintf(
					"neighbouring AS %d announces %d routes with unequal MEDs at exit points spanning %d clusters; "+
						"MED elimination then depends on route visibility, which route reflection restricts — "+
						"the precondition for the paper's persistent oscillations",
					as, len(group), len(clusters)),
			})
		}
		return out
	}
	return p
}

// disputeCyclePass detects the Figure 2 pattern: a cycle in the
// route-preference digraph over reflectors. The digraph has an edge
// r -> r' when reflector r, comparing the rule-1/2 survivors by IGP
// metric (selection rule 5), strictly prefers some exit path served under
// r' to *every* exit path in r's own service subtree. Such an r only
// selects its subtree route while r' advertises the better one, so along
// a cycle the reflectors' choices feed back into each other — a dispute
// cycle, the structure underlying both of Figure 2's phenomena (schedule-
// dependent outcomes and the oscillating synchronous run).
//
// Reflectors holding an E-BGP route of their own never join the digraph:
// under the paper's rule order E-BGP beats I-BGP, so their choice cannot
// depend on other reflectors.
func disputeCyclePass() Pass {
	p := Pass{
		Name: "dispute-cycle",
		Doc:  "cyclic cross-cluster preference among reflectors (the Fig 2 pattern)",
		Ref:  "Section 3, Figure 2",
	}
	p.System = func(ctx *Context) []Finding {
		sys, cands := ctx.Sys, ctx.Cands
		n := sys.N()
		// Edges of the preference digraph, and for the report the exit path
		// that witnesses each edge.
		type edge struct {
			to      bgp.NodeID
			witness bgp.ExitPath
		}
		adj := make([][]edge, n)
		for u := 0; u < n; u++ {
			r := bgp.NodeID(u)
			if sys.Role(r) != topology.Reflector {
				continue
			}
			var own, foreign []bgp.ExitPath
			ebgp := false
			for _, e := range cands {
				switch {
				case e.ExitPoint == r:
					ebgp = true
				case sys.BelowOrSelf(r, e.ExitPoint):
					own = append(own, e)
				default:
					foreign = append(foreign, e)
				}
			}
			if ebgp || len(own) == 0 {
				continue
			}
			bestOwn := sys.Metric(r, own[0])
			for _, e := range own[1:] {
				if m := sys.Metric(r, e); m < bestOwn {
					bestOwn = m
				}
			}
			for _, f := range foreign {
				if sys.Metric(r, f) >= bestOwn {
					continue
				}
				for _, rr := range ctx.Reflectors {
					if rr != r && sys.BelowOrSelf(rr, f.ExitPoint) {
						adj[u] = append(adj[u], edge{to: rr, witness: f})
					}
				}
			}
		}
		// Find a directed cycle by DFS with colours.
		const (
			white = iota
			grey
			black
		)
		colour := make([]int, n)
		parent := make([]int, n)
		parentWitness := make([]bgp.ExitPath, n)
		var cycle []bgp.NodeID
		var witnesses []bgp.ExitPath
		var dfs func(u int) bool
		dfs = func(u int) bool {
			colour[u] = grey
			for _, e := range adj[u] {
				v := int(e.to)
				switch colour[v] {
				case white:
					parent[v] = u
					parentWitness[v] = e.witness
					if dfs(v) {
						return true
					}
				case grey:
					// Unwind u -> ... -> v plus the closing edge.
					cycle = []bgp.NodeID{e.to}
					witnesses = []bgp.ExitPath{e.witness}
					for x := u; ; x = parent[x] {
						cycle = append(cycle, bgp.NodeID(x))
						if x == v {
							break
						}
						witnesses = append(witnesses, parentWitness[x])
					}
					// Reverse into forward order v -> ... -> u -> v.
					for i, j := 0, len(cycle)-1; i < j; i, j = i+1, j-1 {
						cycle[i], cycle[j] = cycle[j], cycle[i]
					}
					return true
				}
			}
			colour[u] = black
			return false
		}
		for u := 0; u < n && cycle == nil; u++ {
			if colour[u] == white {
				dfs(u)
			}
		}
		if cycle == nil {
			return nil
		}
		names := make([]string, len(cycle))
		for i, u := range cycle {
			names[i] = sys.Name(u)
		}
		return []Finding{{
			Pass: p.Name, Severity: Risk, Ref: p.Ref,
			Nodes: names,
			Paths: pathNames(witnesses),
			Detail: fmt.Sprintf(
				"reflectors %s form a preference cycle: each prefers (by IGP metric) an exit path served under the next "+
					"over every exit path in its own subtree, so their selections feed back into each other — "+
					"outcomes become schedule-dependent and synchronous activations can oscillate",
				strings.Join(names, " -> ")),
		}}
	}
	return p
}
