// Package lint is a static oscillation-risk analyzer for I-BGP
// route-reflection configurations.
//
// The paper proves (Section 5) that deciding whether a configuration of
// I-BGP with route reflection can reach a stable routing is NP-complete,
// so exhaustive exploration (package explore) cannot scale. This package
// takes the operational alternative: a set of cheap, named passes that —
// without running any protocol engine — certify structural well-formedness
// and detect the *sufficient conditions for trouble* the paper identifies:
//
//   - structural misconfigurations: clusters without reflectors, cluster
//     parent cycles (non-hierarchical reflection, violating the paper's
//     acyclic-hierarchy assumption), dangling node references, and a
//     disconnected logical graph G_I (Section 4);
//   - oscillation-risk patterns: per-neighbouring-AS MED interaction
//     spanning multiple clusters (the Figure 1(a) precondition, Section 3)
//     and dispute cycles in the route-preference digraph over reflectors
//     (the Figure 2 pattern);
//   - safety certificates: sufficient conditions (full mesh, MED-free
//     selection, hierarchy-monotone IGP metrics) under which classic
//     I-BGP provably converges.
//
// A pass emits Findings; a Report aggregates them into a PASS/RISK/FAIL
// verdict. Passes run at two levels: Spec passes inspect a raw
// topology.Spec (possibly too broken for topology.Build to accept),
// System passes inspect a built topology.System.
package lint

import (
	"fmt"

	"repro/internal/topology"
)

// Severity classifies a finding.
type Severity int

const (
	// Info marks an informational note, typically a safety certificate.
	Info Severity = iota
	// Risk marks an oscillation-risk pattern: the configuration matches a
	// sufficient precondition for (transient or persistent) oscillation.
	Risk
	// Error marks a structural misconfiguration that violates the model
	// constraints of Section 4.
	Error
)

func (s Severity) String() string {
	switch s {
	case Info:
		return "info"
	case Risk:
		return "risk"
	case Error:
		return "error"
	default:
		return fmt.Sprintf("Severity(%d)", int(s))
	}
}

// MarshalJSON renders the severity as its string form.
func (s Severity) MarshalJSON() ([]byte, error) {
	return []byte(`"` + s.String() + `"`), nil
}

// Verdict is the aggregate judgement over a configuration.
type Verdict int

const (
	// VerdictPass: no structural errors and no oscillation-risk pattern.
	VerdictPass Verdict = iota
	// VerdictRisk: structurally sound, but a sufficient oscillation
	// precondition is present.
	VerdictRisk
	// VerdictFail: the configuration violates the structural constraints.
	VerdictFail
)

func (v Verdict) String() string {
	switch v {
	case VerdictPass:
		return "PASS"
	case VerdictRisk:
		return "RISK"
	case VerdictFail:
		return "FAIL"
	default:
		return fmt.Sprintf("Verdict(%d)", int(v))
	}
}

// MarshalJSON renders the verdict as its string form.
func (v Verdict) MarshalJSON() ([]byte, error) {
	return []byte(`"` + v.String() + `"`), nil
}

// Finding is one diagnostic produced by a pass.
type Finding struct {
	// Pass is the name of the pass that produced the finding.
	Pass string `json:"pass"`
	// Severity classifies the finding.
	Severity Severity `json:"severity"`
	// Nodes lists the router names the finding is anchored at, if any.
	Nodes []string `json:"nodes,omitempty"`
	// Paths lists the exit paths involved (as "p<ID>"), if any.
	Paths []string `json:"paths,omitempty"`
	// Detail is the human-readable explanation.
	Detail string `json:"detail"`
	// Ref cites the paper section the check derives from.
	Ref string `json:"ref,omitempty"`
}

func (f Finding) String() string {
	s := fmt.Sprintf("[%s] %s: %s", f.Pass, f.Severity, f.Detail)
	if f.Ref != "" {
		s += " (" + f.Ref + ")"
	}
	return s
}

// Pass is one named static check. Exactly one of Spec and System is
// non-nil: Spec passes run on raw specifications (and therefore can
// diagnose configurations Build rejects), System passes require a built,
// structurally valid System.
type Pass struct {
	// Name identifies the pass in findings and reports.
	Name string
	// Doc is a one-line description of what the pass checks.
	Doc string
	// Ref cites the paper section the pass derives from.
	Ref string
	// Spec, when non-nil, runs the pass on a raw specification.
	Spec func(*topology.Spec) []Finding
	// System, when non-nil, runs the pass on a built system.
	System func(*topology.System) []Finding
}

// Passes returns every registered pass: spec-level structural passes
// first, then system-level risk and certificate passes.
func Passes() []Pass {
	return []Pass{
		clusterStructurePass(),
		nodeReferencesPass(),
		attributesPass(),
		giConnectivityPass(),
		medInteractionPass(),
		disputeCyclePass(),
		certificatePass(),
	}
}

// Report is the outcome of linting one configuration.
type Report struct {
	// Source names the configuration (file path, figure name, ...).
	Source string `json:"source"`
	// Verdict is the aggregate judgement.
	Verdict Verdict `json:"verdict"`
	// Findings lists every diagnostic, in pass order.
	Findings []Finding `json:"findings"`
}

// verdict recomputes the aggregate judgement from the findings.
func (r *Report) verdict() Verdict {
	v := VerdictPass
	for _, f := range r.Findings {
		switch f.Severity {
		case Error:
			return VerdictFail
		case Risk:
			v = VerdictRisk
		}
	}
	return v
}

// RiskFindings returns the findings with severity Risk or Error.
func (r *Report) RiskFindings() []Finding {
	var out []Finding
	for _, f := range r.Findings {
		if f.Severity >= Risk {
			out = append(out, f)
		}
	}
	return out
}

// HasPass reports whether some finding came from the named pass.
func (r *Report) HasPass(name string) bool {
	for _, f := range r.Findings {
		if f.Pass == name {
			return true
		}
	}
	return false
}

// LintSystem runs every system-level pass over a built system.
func LintSystem(source string, sys *topology.System) *Report {
	r := &Report{Source: source}
	for _, p := range Passes() {
		if p.System != nil {
			r.Findings = append(r.Findings, p.System(sys)...)
		}
	}
	r.Verdict = r.verdict()
	return r
}

// LintSpec runs the spec-level passes over a raw specification; when they
// find no structural error it builds the System and runs the system-level
// passes as well. A Build failure the spec passes did not predict is
// reported as an Error finding of the synthetic "build" pass.
func LintSpec(source string, spec *topology.Spec) *Report {
	r := &Report{Source: source}
	for _, p := range Passes() {
		if p.Spec != nil {
			r.Findings = append(r.Findings, p.Spec(spec)...)
		}
	}
	if r.verdict() == VerdictFail {
		r.Verdict = VerdictFail
		return r
	}
	sys, err := topology.BuildSpec(spec)
	if err != nil {
		r.Findings = append(r.Findings, Finding{
			Pass:     "build",
			Severity: Error,
			Detail:   fmt.Sprintf("specification does not build: %v", err),
			Ref:      "Section 4, model constraints",
		})
		r.Verdict = VerdictFail
		return r
	}
	for _, p := range Passes() {
		if p.System != nil {
			r.Findings = append(r.Findings, p.System(sys)...)
		}
	}
	r.Verdict = r.verdict()
	return r
}
