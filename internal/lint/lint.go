// Package lint is a static oscillation-risk analyzer for I-BGP
// route-reflection configurations.
//
// The paper proves (Section 5) that deciding whether a configuration of
// I-BGP with route reflection can reach a stable routing is NP-complete,
// so exhaustive exploration (package explore) cannot scale. This package
// takes the operational alternative: a set of cheap, named passes that —
// without running any protocol engine — certify structural well-formedness
// and detect the *sufficient conditions for trouble* the paper identifies:
//
//   - structural misconfigurations: clusters without reflectors, cluster
//     parent cycles (non-hierarchical reflection, violating the paper's
//     acyclic-hierarchy assumption), dangling node references, and a
//     disconnected logical graph G_I (Section 4);
//   - oscillation-risk patterns: per-neighbouring-AS MED interaction
//     spanning multiple clusters (the Figure 1(a) precondition, Section 3)
//     and dispute cycles in the route-preference digraph over reflectors
//     (the Figure 2 pattern);
//   - safety certificates: sufficient conditions (full mesh, MED-free
//     selection, hierarchy-monotone IGP metrics) under which classic
//     I-BGP provably converges.
//
// A pass emits Findings; a Report aggregates them into a PASS/RISK/FAIL
// verdict. Passes run at two levels: Spec passes inspect a raw
// topology.Spec (possibly too broken for topology.Build to accept),
// System passes inspect a built topology.System.
package lint

import (
	"fmt"
	"sync"

	"repro/internal/bgp"
	"repro/internal/selection"
	"repro/internal/topology"
)

// Severity classifies a finding.
type Severity int

const (
	// Info marks an informational note, typically a safety certificate.
	Info Severity = iota
	// Risk marks an oscillation-risk pattern: the configuration matches a
	// sufficient precondition for (transient or persistent) oscillation.
	Risk
	// Error marks a structural misconfiguration that violates the model
	// constraints of Section 4.
	Error
)

func (s Severity) String() string {
	switch s {
	case Info:
		return "info"
	case Risk:
		return "risk"
	case Error:
		return "error"
	default:
		return fmt.Sprintf("Severity(%d)", int(s))
	}
}

// MarshalJSON renders the severity as its string form.
func (s Severity) MarshalJSON() ([]byte, error) {
	return []byte(`"` + s.String() + `"`), nil
}

// Verdict is the aggregate judgement over a configuration.
type Verdict int

const (
	// VerdictPass: no structural errors and no oscillation-risk pattern.
	VerdictPass Verdict = iota
	// VerdictRisk: structurally sound, but a sufficient oscillation
	// precondition is present.
	VerdictRisk
	// VerdictFail: the configuration violates the structural constraints.
	VerdictFail
)

func (v Verdict) String() string {
	switch v {
	case VerdictPass:
		return "PASS"
	case VerdictRisk:
		return "RISK"
	case VerdictFail:
		return "FAIL"
	default:
		return fmt.Sprintf("Verdict(%d)", int(v))
	}
}

// MarshalJSON renders the verdict as its string form.
func (v Verdict) MarshalJSON() ([]byte, error) {
	return []byte(`"` + v.String() + `"`), nil
}

// Finding is one diagnostic produced by a pass.
type Finding struct {
	// Pass is the name of the pass that produced the finding.
	Pass string `json:"pass"`
	// Severity classifies the finding.
	Severity Severity `json:"severity"`
	// Nodes lists the router names the finding is anchored at, if any.
	Nodes []string `json:"nodes,omitempty"`
	// Paths lists the exit paths involved (as "p<ID>"), if any.
	Paths []string `json:"paths,omitempty"`
	// Detail is the human-readable explanation.
	Detail string `json:"detail"`
	// Ref cites the paper section the check derives from.
	Ref string `json:"ref,omitempty"`
	// Witness, for prover findings, carries machine-checkable evidence
	// decoded from a SAT model: a stable configuration, or a dispute
	// wheel between two of them.
	Witness *Witness `json:"witness,omitempty"`
}

func (f Finding) String() string {
	s := fmt.Sprintf("[%s] %s: %s", f.Pass, f.Severity, f.Detail)
	if f.Ref != "" {
		s += " (" + f.Ref + ")"
	}
	return s
}

// Pass is one named static check. Exactly one of Spec and System is
// non-nil: Spec passes run on raw specifications (and therefore can
// diagnose configurations Build rejects), System passes require a built,
// structurally valid System.
type Pass struct {
	// Name identifies the pass in findings and reports.
	Name string
	// Doc is a one-line description of what the pass checks.
	Doc string
	// Ref cites the paper section the pass derives from.
	Ref string
	// Exact marks the SAT-backed prover passes: they decide stability
	// exactly instead of pattern-matching a sufficient condition, at a
	// cost exponential in the worst case (Section 5). They only run under
	// ProveSystem / ProveSpec, never under the default Lint entry points.
	Exact bool
	// Spec, when non-nil, runs the pass on a raw specification.
	Spec func(*topology.Spec) []Finding
	// System, when non-nil, runs the pass on a built system, through the
	// shared per-run Context.
	System func(*Context) []Finding
}

// Passes returns every registered pass: spec-level structural passes
// first, then system-level risk and certificate passes, then the exact
// prover passes (which only run in exact mode).
func Passes() []Pass {
	return []Pass{
		clusterStructurePass(),
		nodeReferencesPass(),
		attributesPass(),
		giConnectivityPass(),
		medInteractionPass(),
		disputeCyclePass(),
		certificatePass(),
		proveStablePass(),
		proveWheelPass(),
	}
}

// Context carries the system under analysis plus the indexes the
// system-level passes share, so the rule-1/2 survivor set, the reflector
// roster and the IGP trees are computed once per lint run instead of once
// per pass. The shared parts are built before the passes run (the passes
// execute concurrently) and are read-only afterwards.
type Context struct {
	// Sys is the built system under analysis.
	Sys *topology.System
	// Cands holds the selection rule-1/2 survivors among the exits — the
	// candidate set every risk pass reasons over.
	Cands []bgp.ExitPath
	// Reflectors lists the reflector nodes, ascending.
	Reflectors []bgp.NodeID

	proveOnce sync.Once
	prove     *proveIndex
}

// NewContext indexes sys for the system-level passes.
func NewContext(sys *topology.System) *Context {
	ctx := &Context{Sys: sys, Cands: selection.Survivors12(sys.Exits())}
	for u := 0; u < sys.N(); u++ {
		id := bgp.NodeID(u)
		if sys.Role(id) == topology.Reflector {
			ctx.Reflectors = append(ctx.Reflectors, id)
		}
	}
	// Pre-warm the IGP trees the passes consult (metrics from reflectors
	// and exit owners). AllPairs fills lazily and is not synchronised, so
	// warming here keeps the concurrent passes race-free.
	for _, r := range ctx.Reflectors {
		sys.Paths().From(r)
	}
	for _, p := range sys.Exits() {
		sys.Paths().From(p.ExitPoint)
	}
	return ctx
}

// runSystemPasses executes the system-level passes concurrently and
// appends their findings in registry order, so the report is byte-stable
// regardless of scheduling.
func runSystemPasses(r *Report, sys *topology.System, exact bool) {
	ctx := NewContext(sys)
	passes := Passes()
	out := make([][]Finding, len(passes))
	var wg sync.WaitGroup
	for i, p := range passes {
		if p.System == nil || (p.Exact && !exact) {
			continue
		}
		wg.Add(1)
		go func(i int, run func(*Context) []Finding) {
			defer wg.Done()
			out[i] = run(ctx)
		}(i, p.System)
	}
	wg.Wait()
	for _, fs := range out {
		r.Findings = append(r.Findings, fs...)
	}
}

// Report is the outcome of linting one configuration.
type Report struct {
	// Source names the configuration (file path, figure name, ...).
	Source string `json:"source"`
	// Verdict is the aggregate judgement.
	Verdict Verdict `json:"verdict"`
	// Findings lists every diagnostic, in pass order.
	Findings []Finding `json:"findings"`
}

// verdict recomputes the aggregate judgement from the findings.
func (r *Report) verdict() Verdict {
	v := VerdictPass
	for _, f := range r.Findings {
		switch f.Severity {
		case Error:
			return VerdictFail
		case Risk:
			v = VerdictRisk
		}
	}
	return v
}

// RiskFindings returns the findings with severity Risk or Error.
func (r *Report) RiskFindings() []Finding {
	var out []Finding
	for _, f := range r.Findings {
		if f.Severity >= Risk {
			out = append(out, f)
		}
	}
	return out
}

// HasPass reports whether some finding came from the named pass.
func (r *Report) HasPass(name string) bool {
	for _, f := range r.Findings {
		if f.Pass == name {
			return true
		}
	}
	return false
}

// LintSystem runs every non-exact system-level pass over a built system.
func LintSystem(source string, sys *topology.System) *Report {
	return lintSystem(source, sys, false)
}

// ProveSystem is LintSystem plus the exact SAT-backed prover passes: the
// verdict is then exact on the "no stable configuration exists" side (an
// UNSAT prove-stable outcome is a proof of persistent oscillation) and
// carries decoded witnesses on the SAT side.
func ProveSystem(source string, sys *topology.System) *Report {
	return lintSystem(source, sys, true)
}

func lintSystem(source string, sys *topology.System, exact bool) *Report {
	r := &Report{Source: source}
	runSystemPasses(r, sys, exact)
	r.Verdict = r.verdict()
	return r
}

// LintSpec runs the spec-level passes over a raw specification; when they
// find no structural error it builds the System and runs the system-level
// passes as well. A Build failure the spec passes did not predict is
// reported as an Error finding of the synthetic "build" pass.
func LintSpec(source string, spec *topology.Spec) *Report {
	return lintSpec(source, spec, false)
}

// ProveSpec is LintSpec with the exact prover passes included at the
// system level.
func ProveSpec(source string, spec *topology.Spec) *Report {
	return lintSpec(source, spec, true)
}

func lintSpec(source string, spec *topology.Spec, exact bool) *Report {
	r := &Report{Source: source}
	for _, p := range Passes() {
		if p.Spec != nil {
			r.Findings = append(r.Findings, p.Spec(spec)...)
		}
	}
	if r.verdict() == VerdictFail {
		r.Verdict = VerdictFail
		return r
	}
	sys, err := topology.BuildSpec(spec)
	if err != nil {
		r.Findings = append(r.Findings, Finding{
			Pass:     "build",
			Severity: Error,
			Detail:   fmt.Sprintf("specification does not build: %v", err),
			Ref:      "Section 4, model constraints",
		})
		r.Verdict = VerdictFail
		return r
	}
	runSystemPasses(r, sys, exact)
	r.Verdict = r.verdict()
	return r
}
