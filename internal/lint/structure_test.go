package lint

import (
	"strings"
	"testing"

	"repro/internal/topology"
)

// specOf builds a minimal valid two-cluster spec the structural tests then
// break in targeted ways.
func specOf(mutate func(*topology.Spec)) *topology.Spec {
	spec := &topology.Spec{
		Clusters: []topology.ClusterSpec{
			{Reflectors: []string{"r1"}, Clients: []string{"c1"}},
			{Reflectors: []string{"r2"}, Clients: []string{"c2"}},
		},
		Links: []topology.LinkSpec{
			{A: "r1", B: "c1", Cost: 1},
			{A: "r2", B: "c2", Cost: 1},
			{A: "r1", B: "r2", Cost: 1},
		},
		Exits: []topology.ExitJSON{
			{At: "c1", NextAS: 1, MED: 0},
			{At: "c2", NextAS: 2, MED: 0},
		},
	}
	if mutate != nil {
		mutate(spec)
	}
	return spec
}

func TestSpecPassesFlagStructuralBreakage(t *testing.T) {
	tests := []struct {
		name   string
		mutate func(*topology.Spec)
		pass   string
		detail string
	}{
		{
			name:   "valid spec passes",
			mutate: nil,
			pass:   "",
		},
		{
			name: "client with no reflector",
			mutate: func(s *topology.Spec) {
				s.Clusters[0].Reflectors = nil
			},
			pass:   "cluster-structure",
			detail: "no route reflector",
		},
		{
			name: "cluster parent cycle",
			mutate: func(s *topology.Spec) {
				one, zero := 1, 0
				s.Clusters[0].Parent = &one
				s.Clusters[1].Parent = &zero
			},
			pass:   "cluster-structure",
			detail: "cluster cycle",
		},
		{
			name: "self parent",
			mutate: func(s *topology.Spec) {
				zero := 0
				s.Clusters[0].Parent = &zero
			},
			pass:   "cluster-structure",
			detail: "cluster cycle",
		},
		{
			name: "unknown parent",
			mutate: func(s *topology.Spec) {
				nine := 9
				s.Clusters[0].Parent = &nine
			},
			pass:   "cluster-structure",
			detail: "unknown parent",
		},
		{
			name: "dual-role node",
			mutate: func(s *topology.Spec) {
				s.Clusters[1].Clients = append(s.Clusters[1].Clients, "r1")
			},
			pass:   "cluster-structure",
			detail: "non-hierarchical reflection",
		},
		{
			name: "unknown reflector reference in link",
			mutate: func(s *topology.Spec) {
				s.Links[2].B = "ghost"
			},
			pass:   "node-references",
			detail: `unknown router "ghost"`,
		},
		{
			name: "unknown exit point",
			mutate: func(s *topology.Spec) {
				s.Exits[0].At = "nowhere"
			},
			pass:   "node-references",
			detail: `unknown router "nowhere"`,
		},
		{
			name: "self link",
			mutate: func(s *topology.Spec) {
				s.Links[0].B = "r1"
			},
			pass:   "node-references",
			detail: "to itself",
		},
		{
			name: "negative MED",
			mutate: func(s *topology.Spec) {
				s.Exits[0].MED = -3
			},
			pass:   "attributes",
			detail: "malformed MED",
		},
		{
			name: "negative link cost",
			mutate: func(s *topology.Spec) {
				s.Links[0].Cost = -1
			},
			pass:   "attributes",
			detail: "negative cost",
		},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			rep := LintSpec(tc.name, specOf(tc.mutate))
			if tc.pass == "" {
				if rep.Verdict != VerdictPass {
					t.Fatalf("verdict = %v, want PASS; findings:\n%s", rep.Verdict, findingDump(rep))
				}
				return
			}
			if rep.Verdict != VerdictFail {
				t.Fatalf("verdict = %v, want FAIL; findings:\n%s", rep.Verdict, findingDump(rep))
			}
			if !rep.HasPass(tc.pass) {
				t.Fatalf("no %q finding; findings:\n%s", tc.pass, findingDump(rep))
			}
			if !strings.Contains(findingDump(rep), tc.detail) {
				t.Errorf("findings lack %q; got:\n%s", tc.detail, findingDump(rep))
			}
		})
	}
}

// TestGIConnectivity checks the derived-session connectivity pass directly:
// a sub-cluster whose reflector is served by its parent is connected, while
// a reflector-less cluster's clients are not.
func TestGIConnectivity(t *testing.T) {
	spec := specOf(func(s *topology.Spec) {
		s.Clusters[0].Reflectors = nil // orphans c1
	})
	rep := LintSpec("gi", spec)
	if !rep.HasPass("gi-connectivity") {
		t.Fatalf("expected gi-connectivity finding; got:\n%s", findingDump(rep))
	}
	found := false
	for _, f := range rep.Findings {
		if f.Pass == "gi-connectivity" {
			for _, n := range f.Nodes {
				if n == "c1" {
					found = true
				}
			}
		}
	}
	if !found {
		t.Errorf("gi-connectivity finding does not name the orphaned client c1:\n%s", findingDump(rep))
	}
}
