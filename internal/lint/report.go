package lint

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"
)

// WriteText renders reports in the human-readable form the ibgplint
// command prints: one verdict line per report followed by indented
// findings (risk and error findings always; info findings only when
// verbose is set).
func WriteText(w io.Writer, verbose bool, reports ...*Report) error {
	for _, r := range reports {
		if _, err := fmt.Fprintf(w, "%-4s  %s\n", r.Verdict, r.Source); err != nil {
			return err
		}
		for _, f := range r.Findings {
			if f.Severity == Info && !verbose {
				continue
			}
			if _, err := fmt.Fprintf(w, "      %s\n", wrapFinding(f)); err != nil {
				return err
			}
		}
	}
	return nil
}

// wrapFinding renders one finding on a single logical line, locus first.
func wrapFinding(f Finding) string {
	var b strings.Builder
	fmt.Fprintf(&b, "[%s] %s", f.Pass, f.Severity)
	if len(f.Nodes) > 0 {
		fmt.Fprintf(&b, " at %s", strings.Join(f.Nodes, ","))
	}
	if len(f.Paths) > 0 {
		fmt.Fprintf(&b, " paths %s", strings.Join(f.Paths, ","))
	}
	fmt.Fprintf(&b, ": %s", f.Detail)
	if f.Witness != nil {
		if len(f.Witness.Wheel) > 0 {
			parts := make([]string, len(f.Witness.Wheel))
			for i, s := range f.Witness.Wheel {
				parts[i] = fmt.Sprintf("%s(%s|%s)", s.Node, s.Hold, s.Alt)
			}
			fmt.Fprintf(&b, "; wheel %s", strings.Join(parts, " -> "))
		} else if n := len(f.Witness.Config); n > 0 && n <= 16 {
			// Small systems get the full decoded configuration inline;
			// larger witnesses stay JSON-only (-json carries them whole).
			names := make([]string, 0, n)
			for name := range f.Witness.Config {
				names = append(names, name)
			}
			sort.Strings(names)
			parts := make([]string, n)
			for i, name := range names {
				parts[i] = name + "=" + f.Witness.Config[name]
			}
			fmt.Fprintf(&b, "; config %s", strings.Join(parts, " "))
		}
	}
	if f.Ref != "" {
		fmt.Fprintf(&b, " [%s]", f.Ref)
	}
	return b.String()
}

// WriteJSON renders reports as an indented JSON array.
func WriteJSON(w io.Writer, reports ...*Report) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(reports)
}
