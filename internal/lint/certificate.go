package lint

import (
	"fmt"

	"repro/internal/bgp"
	"repro/internal/topology"
)

// certificatePass emits informational safety certificates: sufficient
// conditions under which classic I-BGP provably converges, so a PASS
// verdict can say *why* the configuration is safe rather than merely that
// no risk pattern fired.
//
// Certificates emitted:
//
//   - full-mesh: every router is a client-less reflector. Route
//     reflection then hides nothing; with additionally MED-free selection
//     (below) the system is an instance the paper's Section 2 analysis
//     covers and classic I-BGP converges.
//   - med-free-selection: among the rule-1/2 survivors every neighbouring
//     AS announces a single MED value, so rule 3 never eliminates a
//     route based on visibility. Selection degenerates to the
//     shortest-path comparison whose stable solution always exists.
//   - monotone-hierarchy: every reflector weakly prefers (by IGP metric)
//     its best own-subtree exit to every foreign exit, so no preference
//     edge between reflectors exists at all and the dispute digraph of
//     the dispute-cycle pass is empty.
//
// Certificates are heuristic *sufficient* conditions: their absence is
// not a finding (deciding stability exactly is NP-complete, Section 5).
func certificatePass() Pass {
	p := Pass{
		Name: "safety-certificate",
		Doc:  "sufficient conditions under which classic I-BGP provably converges",
		Ref:  "Section 2; Section 5",
	}
	p.System = func(ctx *Context) []Finding {
		sys := ctx.Sys
		var out []Finding
		n := sys.N()

		fullMesh := true
		for u := 0; u < n; u++ {
			if sys.Role(bgp.NodeID(u)) != topology.Reflector || len(sys.ClusterMembers(sys.Cluster(bgp.NodeID(u)))) != 1 {
				fullMesh = false
				break
			}
		}
		if fullMesh {
			out = append(out, Finding{
				Pass: p.Name, Severity: Info, Ref: "Section 2",
				Detail: fmt.Sprintf("full-mesh: all %d routers are client-less reflectors; route reflection hides no routes", n),
			})
		}

		cands := ctx.Cands
		medByAS := map[bgp.ASN]int{}
		medFree := true
		for _, e := range cands {
			if med, ok := medByAS[e.NextAS]; ok && med != e.MED {
				medFree = false
				break
			}
			medByAS[e.NextAS] = e.MED
		}
		if medFree {
			out = append(out, Finding{
				Pass: p.Name, Severity: Info, Ref: "Section 2; Section 6",
				Detail: "med-free-selection: every neighbouring AS announces a single MED among the rule-1/2 survivors, " +
					"so MED elimination never depends on route visibility",
			})
		}

		monotone := true
		for u := 0; u < n && monotone; u++ {
			r := bgp.NodeID(u)
			if sys.Role(r) != topology.Reflector {
				continue
			}
			var bestOwn int64 = -1
			for _, e := range cands {
				if e.ExitPoint != r && sys.BelowOrSelf(r, e.ExitPoint) {
					if m := sys.Metric(r, e); bestOwn < 0 || m < bestOwn {
						bestOwn = m
					}
				}
			}
			if bestOwn < 0 {
				continue
			}
			for _, e := range cands {
				if !sys.BelowOrSelf(r, e.ExitPoint) && sys.Metric(r, e) < bestOwn {
					monotone = false
					break
				}
			}
		}
		if monotone && !fullMesh {
			out = append(out, Finding{
				Pass: p.Name, Severity: Info, Ref: "Section 3, Figure 2 (contrapositive)",
				Detail: "monotone-hierarchy: every reflector weakly prefers its own subtree's exits by IGP metric, " +
					"so the cross-cluster preference digraph has no edges",
			})
		}
		return out
	}
	return p
}
