package lint

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/figures"
	"repro/internal/topology"
)

// TestFigureVerdicts is the core soundness table: every oscillating figure
// configuration must be flagged RISK, every safe one must PASS, and no
// figure (all are buildable) may FAIL.
func TestFigureVerdicts(t *testing.T) {
	for _, e := range figures.All() {
		e := e
		t.Run("Fig"+e.Name, func(t *testing.T) {
			rep := LintSystem("fig"+e.Name, e.Build().Sys)
			want := VerdictPass
			if e.Oscillates {
				want = VerdictRisk
			}
			if rep.Verdict != want {
				t.Fatalf("Fig%s (%s): verdict = %v, want %v; findings:\n%s",
					e.Name, e.Title, rep.Verdict, want, findingDump(rep))
			}
		})
	}
}

// TestFigureFindingDetails pins the specific pass and citation behind the
// headline verdicts the paper's examples demand.
func TestFigureFindingDetails(t *testing.T) {
	tests := []struct {
		fig      string
		build    func() *figures.Fig
		pass     string
		refPart  string
		nodePart string
	}{
		// Fig 1(a): the MED/cluster precondition, citing Section 3.
		{"1a", figures.Fig1a, "med-cluster-interaction", "Section 3", "a2"},
		// Fig 2: the cross-cluster dispute cycle.
		{"2", figures.Fig2, "dispute-cycle", "Figure 2", "RR1"},
		// Fig 13, the Section 8 Walton counterexample: MED again.
		{"13", figures.Fig13, "med-cluster-interaction", "Section 3", "C1_0"},
	}
	for _, tc := range tests {
		rep := LintSystem("fig"+tc.fig, tc.build().Sys)
		if !rep.HasPass(tc.pass) {
			t.Errorf("Fig%s: no %q finding; findings:\n%s", tc.fig, tc.pass, findingDump(rep))
			continue
		}
		found := false
		for _, f := range rep.Findings {
			if f.Pass != tc.pass {
				continue
			}
			if !strings.Contains(f.Ref, tc.refPart) {
				t.Errorf("Fig%s: %s finding cites %q, want mention of %q", tc.fig, tc.pass, f.Ref, tc.refPart)
			}
			for _, n := range f.Nodes {
				if n == tc.nodePart {
					found = true
				}
			}
		}
		if !found {
			t.Errorf("Fig%s: %s finding does not anchor at node %q; findings:\n%s",
				tc.fig, tc.pass, tc.nodePart, findingDump(rep))
		}
	}
}

// TestHierarchyTopologyPasses lints the bundled three-level hierarchy
// configuration: it must PASS and carry the monotone-hierarchy and
// MED-free certificates.
func TestHierarchyTopologyPasses(t *testing.T) {
	rep := lintFile(t, "hierarchy.json")
	if rep.Verdict != VerdictPass {
		t.Fatalf("hierarchy.json: verdict = %v, want PASS; findings:\n%s", rep.Verdict, findingDump(rep))
	}
	text := findingDump(rep)
	for _, cert := range []string{"monotone-hierarchy", "med-free-selection"} {
		if !strings.Contains(text, cert) {
			t.Errorf("hierarchy.json: missing %s certificate; findings:\n%s", cert, text)
		}
	}
	if !rep.HasPass("safety-certificate") {
		t.Errorf("hierarchy.json: certificates not attributed to the safety-certificate pass; findings:\n%s", text)
	}
}

// TestQuickstartTopologyPasses replays the README/examples quickstart
// configuration through the linter: MEDs differ within AS 100 but both
// exit points share a cluster, so no risk pattern may fire.
func TestQuickstartTopologyPasses(t *testing.T) {
	b := topology.NewBuilder()
	pod1 := b.NewCluster()
	pod2 := b.NewCluster()
	rr1 := b.Reflector("rr1", pod1)
	edge1 := b.Client("edge1", pod1)
	edge2 := b.Client("edge2", pod1)
	rr2 := b.Reflector("rr2", pod2)
	edge3 := b.Client("edge3", pod2)
	b.Link(rr1, edge1, 10).Link(rr1, edge2, 20).Link(rr1, rr2, 5).Link(rr2, edge3, 10)
	b.Exit(edge1, topology.ExitSpec{NextAS: 100, MED: 10})
	b.Exit(edge2, topology.ExitSpec{NextAS: 100, MED: 0})
	b.Exit(edge3, topology.ExitSpec{NextAS: 200, MED: 0})
	sys, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	rep := LintSystem("quickstart", sys)
	if rep.Verdict != VerdictPass {
		t.Fatalf("quickstart: verdict = %v, want PASS; findings:\n%s", rep.Verdict, findingDump(rep))
	}
}

// TestBrokenClusterFixtureFails lints the negative fixture: a cluster of
// clients with no reflector plus a parent cycle must FAIL with both the
// cluster-structure and gi-connectivity passes firing.
func TestBrokenClusterFixtureFails(t *testing.T) {
	rep := lintFile(t, "broken-cluster.json")
	if rep.Verdict != VerdictFail {
		t.Fatalf("broken-cluster.json: verdict = %v, want FAIL; findings:\n%s", rep.Verdict, findingDump(rep))
	}
	text := findingDump(rep)
	for _, want := range []string{"no route reflector", "cluster cycle", "disconnected"} {
		if !strings.Contains(text, want) {
			t.Errorf("broken-cluster.json: findings lack %q; got:\n%s", want, text)
		}
	}
}

// TestAllBundledTopologies lints every I-BGP topology JSON shipped under
// examples/topologies: only the deliberately broken fixture may FAIL.
func TestAllBundledTopologies(t *testing.T) {
	dir := filepath.Join("..", "..", "examples", "topologies")
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, ent := range entries {
		name := ent.Name()
		if filepath.Ext(name) != ".json" || strings.HasPrefix(name, "confed-") {
			continue
		}
		f, err := os.Open(filepath.Join(dir, name))
		if err != nil {
			t.Fatal(err)
		}
		spec, err := topology.ParseSpec(f)
		f.Close()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		rep := LintSpec(name, spec)
		if name == "broken-cluster.json" {
			if rep.Verdict != VerdictFail {
				t.Errorf("%s: verdict = %v, want FAIL", name, rep.Verdict)
			}
			continue
		}
		if rep.Verdict == VerdictFail {
			t.Errorf("%s: unexpected FAIL; findings:\n%s", name, findingDump(rep))
		}
	}
}

// TestReporters exercises both output formats over a RISK report.
func TestReporters(t *testing.T) {
	rep := LintSystem("fig1a", figures.Fig1a().Sys)
	var text bytes.Buffer
	if err := WriteText(&text, true, rep); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"RISK", "fig1a", "med-cluster-interaction"} {
		if !strings.Contains(text.String(), want) {
			t.Errorf("text report lacks %q:\n%s", want, text.String())
		}
	}
	var buf bytes.Buffer
	if err := WriteJSON(&buf, rep); err != nil {
		t.Fatal(err)
	}
	var decoded []struct {
		Source   string `json:"source"`
		Verdict  string `json:"verdict"`
		Findings []struct {
			Pass     string `json:"pass"`
			Severity string `json:"severity"`
		} `json:"findings"`
	}
	if err := json.Unmarshal(buf.Bytes(), &decoded); err != nil {
		t.Fatalf("JSON report does not parse: %v\n%s", err, buf.String())
	}
	if len(decoded) != 1 || decoded[0].Verdict != "RISK" || decoded[0].Source != "fig1a" {
		t.Fatalf("JSON report mismatch: %+v", decoded)
	}
	seen := false
	for _, f := range decoded[0].Findings {
		if f.Pass == "med-cluster-interaction" && f.Severity == "risk" {
			seen = true
		}
	}
	if !seen {
		t.Errorf("JSON report lacks the med-cluster-interaction risk finding:\n%s", buf.String())
	}
}

// TestPassRegistry sanity-checks the pass registry: unique names, docs and
// exactly one of Spec/System set.
func TestPassRegistry(t *testing.T) {
	seen := map[string]bool{}
	for _, p := range Passes() {
		if p.Name == "" || p.Doc == "" {
			t.Errorf("pass %+v lacks name or doc", p)
		}
		if seen[p.Name] {
			t.Errorf("duplicate pass name %q", p.Name)
		}
		seen[p.Name] = true
		if (p.Spec == nil) == (p.System == nil) {
			t.Errorf("pass %q must set exactly one of Spec and System", p.Name)
		}
	}
}

func lintFile(t *testing.T, name string) *Report {
	t.Helper()
	f, err := os.Open(filepath.Join("..", "..", "examples", "topologies", name))
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	spec, err := topology.ParseSpec(f)
	if err != nil {
		t.Fatal(err)
	}
	return LintSpec(name, spec)
}

func findingDump(r *Report) string {
	var b strings.Builder
	for _, f := range r.Findings {
		b.WriteString("  " + f.String() + "\n")
	}
	return b.String()
}

// TestBundledTopologyVerdicts pins the exact lint verdict of every bundled
// topology. The fixture list comes from a directory glob, so a newly added
// fixture fails the test until its expected verdict is recorded here —
// verdict coverage can't silently lag the example set.
func TestBundledTopologyVerdicts(t *testing.T) {
	want := map[string]Verdict{
		"broken-cluster.json": VerdictFail, // client in two clusters
		"fig13.json":          VerdictRisk, // MED oscillation survives Walton
		"fig14.json":          VerdictPass, // fully meshed RRs, no MED split
		"fig1a.json":          VerdictRisk, // paper's basic 3-cluster cycle
		"fig2.json":           VerdictRisk,
		"hierarchy.json":      VerdictPass,
	}
	paths, err := filepath.Glob(filepath.Join("..", "..", "examples", "topologies", "*.json"))
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) == 0 {
		t.Fatal("no bundled topologies")
	}
	covered := map[string]bool{}
	for _, path := range paths {
		name := filepath.Base(path)
		if strings.HasPrefix(name, "confed-") {
			// Confederation specs use their own loader and linter entry
			// point; they are out of scope for LintSpec.
			continue
		}
		expect, ok := want[name]
		if !ok {
			t.Errorf("%s: new fixture without an expected verdict — add it to the table", name)
			continue
		}
		covered[name] = true
		f, err := os.Open(path)
		if err != nil {
			t.Fatal(err)
		}
		spec, err := topology.ParseSpec(f)
		f.Close()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		rep := LintSpec(name, spec)
		if rep.Verdict != expect {
			t.Errorf("%s: verdict = %v, want %v; findings:\n%s", name, rep.Verdict, expect, findingDump(rep))
		}
	}
	for name := range want {
		if !covered[name] {
			t.Errorf("%s: listed in the verdict table but not shipped", name)
		}
	}
}
