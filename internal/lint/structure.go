package lint

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/topology"
)

// specNodes inventories the routers a spec declares, in declaration order.
// Duplicate declarations are kept so the structural passes can report them.
type specNode struct {
	name      string
	cluster   int
	reflector bool
}

func specInventory(spec *topology.Spec) []specNode {
	var nodes []specNode
	for ci, c := range spec.Clusters {
		for _, n := range c.Reflectors {
			nodes = append(nodes, specNode{name: n, cluster: ci, reflector: true})
		}
		for _, n := range c.Clients {
			nodes = append(nodes, specNode{name: n, cluster: ci, reflector: false})
		}
	}
	return nodes
}

// clusterStructurePass checks the cluster skeleton: every cluster has a
// reflector and at least one member, parent references stay inside the
// declared clusters and form a forest (no cycles, no self-parents), and no
// router is declared twice — a router serving as both reflector and client
// or sitting in two clusters breaks the acyclic reflection hierarchy the
// paper's model assumes.
func clusterStructurePass() Pass {
	p := Pass{
		Name: "cluster-structure",
		Doc:  "clusters have reflectors, parents form a forest, nodes have one role",
		Ref:  "Section 4, model constraints 1-4",
	}
	p.Spec = func(spec *topology.Spec) []Finding {
		var out []Finding
		if len(spec.Clusters) == 0 {
			out = append(out, Finding{
				Pass: p.Name, Severity: Error, Ref: p.Ref,
				Detail: "no clusters declared",
			})
			return out
		}
		for ci, c := range spec.Clusters {
			if len(c.Reflectors) == 0 {
				f := Finding{
					Pass: p.Name, Severity: Error, Ref: p.Ref,
					Nodes:  append([]string(nil), c.Clients...),
					Detail: fmt.Sprintf("cluster %d has no route reflector", ci),
				}
				if len(c.Clients) > 0 {
					f.Detail = fmt.Sprintf(
						"cluster %d has clients %s but no route reflector; the clients cannot learn or announce any I-BGP route",
						ci, strings.Join(c.Clients, ", "))
				}
				out = append(out, f)
			}
			if len(c.Reflectors)+len(c.Clients) == 0 {
				out = append(out, Finding{
					Pass: p.Name, Severity: Error, Ref: p.Ref,
					Detail: fmt.Sprintf("cluster %d is empty", ci),
				})
			}
			if c.Parent != nil && (*c.Parent < 0 || *c.Parent >= len(spec.Clusters)) {
				out = append(out, Finding{
					Pass: p.Name, Severity: Error, Ref: p.Ref,
					Detail: fmt.Sprintf("cluster %d references unknown parent cluster %d", ci, *c.Parent),
				})
			}
		}
		// Parent cycles: follow parent pointers from every cluster; a
		// revisit inside the current walk is a cycle (non-hierarchical
		// reflection — the reflection graph must be acyclic).
		reported := make([]bool, len(spec.Clusters))
		for start := range spec.Clusters {
			onWalk := map[int]bool{}
			order := []int{}
			for ci := start; ; {
				if onWalk[ci] {
					// Trim the walk to the cycle itself.
					var cyc []string
					for i, c := range order {
						if c == ci {
							for _, k := range order[i:] {
								cyc = append(cyc, fmt.Sprintf("cluster %d", k))
							}
							break
						}
					}
					if !reported[ci] {
						for _, k := range order {
							reported[k] = true
						}
						out = append(out, Finding{
							Pass: p.Name, Severity: Error, Ref: p.Ref,
							Detail: fmt.Sprintf("reflection hierarchy contains a cluster cycle: %s",
								strings.Join(cyc, " -> ")),
						})
					}
					break
				}
				onWalk[ci] = true
				order = append(order, ci)
				c := spec.Clusters[ci]
				if c.Parent == nil || *c.Parent < 0 || *c.Parent >= len(spec.Clusters) {
					break
				}
				ci = *c.Parent
			}
		}
		// Duplicate declarations.
		first := map[string]specNode{}
		for _, n := range specInventory(spec) {
			prev, dup := first[n.name]
			if !dup {
				first[n.name] = n
				continue
			}
			detail := fmt.Sprintf("router %q is declared twice (clusters %d and %d)", n.name, prev.cluster, n.cluster)
			if prev.reflector != n.reflector {
				rc, cc := prev.cluster, n.cluster
				if n.reflector {
					rc, cc = n.cluster, prev.cluster
				}
				detail = fmt.Sprintf(
					"router %q is both a reflector (cluster %d) and a client (cluster %d) — non-hierarchical reflection",
					n.name, rc, cc)
			}
			out = append(out, Finding{
				Pass: p.Name, Severity: Error, Ref: p.Ref,
				Nodes: []string{n.name}, Detail: detail,
			})
		}
		return out
	}
	return p
}

// nodeReferencesPass checks that links, client sessions, exits and BGP id
// overrides reference declared routers only, and that links do not connect
// a router to itself.
func nodeReferencesPass() Pass {
	p := Pass{
		Name: "node-references",
		Doc:  "links, sessions, exits and BGP ids reference declared routers",
		Ref:  "Section 4, Modeling Communication",
	}
	p.Spec = func(spec *topology.Spec) []Finding {
		declared := map[string]bool{}
		for _, n := range specInventory(spec) {
			declared[n.name] = true
		}
		var out []Finding
		unknown := func(kind, name string) {
			out = append(out, Finding{
				Pass: p.Name, Severity: Error, Ref: p.Ref,
				Nodes:  []string{name},
				Detail: fmt.Sprintf("%s references unknown router %q", kind, name),
			})
		}
		for i, l := range spec.Links {
			if !declared[l.A] {
				unknown(fmt.Sprintf("link %d", i), l.A)
			}
			if !declared[l.B] {
				unknown(fmt.Sprintf("link %d", i), l.B)
			}
			if l.A == l.B {
				out = append(out, Finding{
					Pass: p.Name, Severity: Error, Ref: p.Ref,
					Nodes:  []string{l.A},
					Detail: fmt.Sprintf("link %d connects %q to itself", i, l.A),
				})
			}
		}
		for i, s := range spec.ClientSessions {
			if !declared[s.A] {
				unknown(fmt.Sprintf("client session %d", i), s.A)
			}
			if !declared[s.B] {
				unknown(fmt.Sprintf("client session %d", i), s.B)
			}
		}
		for i, e := range spec.Exits {
			if !declared[e.At] {
				unknown(fmt.Sprintf("exit %d", i), e.At)
			}
		}
		names := make([]string, 0, len(spec.BGPIDs))
		for name := range spec.BGPIDs {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			if !declared[name] {
				unknown("bgpIds override", name)
			}
		}
		return out
	}
	return p
}

// attributesPass checks value ranges: non-negative MED, LOCAL-PREF, exit
// and link costs. The selection procedure compares these with plain integer
// order; negative values have no protocol meaning.
func attributesPass() Pass {
	p := Pass{
		Name: "attributes",
		Doc:  "MED, LOCAL-PREF and costs are non-negative",
		Ref:  "Section 2, route selection attributes",
	}
	p.Spec = func(spec *topology.Spec) []Finding {
		var out []Finding
		for i, l := range spec.Links {
			if l.Cost < 0 {
				out = append(out, Finding{
					Pass: p.Name, Severity: Error, Ref: p.Ref,
					Nodes:  []string{l.A, l.B},
					Detail: fmt.Sprintf("link %d (%s-%s) has negative cost %d", i, l.A, l.B, l.Cost),
				})
			}
		}
		for i, e := range spec.Exits {
			bad := func(attr string, v int64) {
				out = append(out, Finding{
					Pass: p.Name, Severity: Error, Ref: p.Ref,
					Nodes:  []string{e.At},
					Detail: fmt.Sprintf("exit %d at %q has malformed %s %d (must be non-negative)", i, e.At, attr, v),
				})
			}
			if e.MED < 0 {
				bad("MED", int64(e.MED))
			}
			if e.LocalPref < 0 {
				bad("LOCAL-PREF", int64(e.LocalPref))
			}
			if e.ExitCost < 0 {
				bad("exit cost", e.ExitCost)
			}
		}
		return out
	}
	return p
}

// giConnectivityPass derives the I-BGP session set a spec induces — full
// mesh among top-level reflectors, reflector-to-served-member within each
// cluster, declared client sessions — and checks that the logical graph
// G_I is connected. Routers outside the connected component (for example
// the clients of a reflector-less cluster) can never learn remote routes.
func giConnectivityPass() Pass {
	p := Pass{
		Name: "gi-connectivity",
		Doc:  "the logical session graph G_I is connected",
		Ref:  "Section 4, the logical graph G_I",
	}
	p.Spec = func(spec *topology.Spec) []Finding {
		nodes := specInventory(spec)
		if len(nodes) == 0 {
			return nil
		}
		// Index only the first declaration of each name; duplicates are
		// cluster-structure findings.
		idx := map[string]int{}
		for i, n := range nodes {
			if _, ok := idx[n.name]; !ok {
				idx[n.name] = i
			}
		}
		adj := make([][]int, len(nodes))
		connect := func(a, b int) {
			adj[a] = append(adj[a], b)
			adj[b] = append(adj[b], a)
		}
		// Full mesh among top-level reflectors.
		var topRRs []int
		for i, n := range nodes {
			if n.reflector && n.cluster < len(spec.Clusters) && spec.Clusters[n.cluster].Parent == nil {
				topRRs = append(topRRs, i)
			}
		}
		for i := 0; i < len(topRRs); i++ {
			for j := i + 1; j < len(topRRs); j++ {
				connect(topRRs[i], topRRs[j])
			}
		}
		// Reflector-to-served-member within each cluster: own clients plus
		// the reflectors of sub-clusters.
		for ci := range spec.Clusters {
			var rrs, served []int
			for i, n := range nodes {
				switch {
				case n.cluster == ci && n.reflector:
					rrs = append(rrs, i)
				case n.cluster == ci:
					served = append(served, i)
				case n.reflector && n.cluster < len(spec.Clusters) &&
					spec.Clusters[n.cluster].Parent != nil && *spec.Clusters[n.cluster].Parent == ci:
					served = append(served, i)
				}
			}
			for _, r := range rrs {
				for _, m := range served {
					connect(r, m)
				}
			}
		}
		for _, s := range spec.ClientSessions {
			a, okA := idx[s.A]
			b, okB := idx[s.B]
			if okA && okB {
				connect(a, b)
			}
		}
		// BFS rooted at the first top-level reflector (the core of the
		// session graph is the reflector mesh), so the cut set names the
		// orphaned routers; fall back to the first node.
		root := 0
		if len(topRRs) > 0 {
			root = topRRs[0]
		}
		seen := make([]bool, len(nodes))
		queue := []int{root}
		seen[root] = true
		for len(queue) > 0 {
			u := queue[0]
			queue = queue[1:]
			for _, v := range adj[u] {
				if !seen[v] {
					seen[v] = true
					queue = append(queue, v)
				}
			}
		}
		var cut []string
		for i, n := range nodes {
			if !seen[i] {
				cut = append(cut, n.name)
			}
		}
		if len(cut) == 0 {
			return nil
		}
		sort.Strings(cut)
		return []Finding{{
			Pass: p.Name, Severity: Error, Ref: p.Ref,
			Nodes: cut,
			Detail: fmt.Sprintf("logical graph G_I is disconnected: %s unreachable from %q over I-BGP sessions",
				strings.Join(cut, ", "), nodes[root].name),
		}}
	}
	return p
}
