package lint

import (
	"context"
	"fmt"

	"repro/internal/explore"
	"repro/internal/protocol"
	"repro/internal/selection"
	"repro/internal/topology"
)

// ConfirmOptions tunes Confirm.
type ConfirmOptions struct {
	// MaxStates bounds the reachable-state search per policy (default
	// 200000, explore.Options.MaxStates).
	MaxStates int
	// Workers parallelises the search (explore.Options.Workers). The
	// outcome is identical for every value.
	Workers int
	// Ctx, when non-nil, cancels the search early.
	Ctx context.Context
}

// Confirm upgrades a static RISK verdict with dynamic evidence: it runs
// the exhaustive reachable-state search over the interned state arena
// (package explore) under classic I-BGP from the cold-start configuration
// and appends a finding from the synthetic "confirm" pass:
//
//   - Risk, when no stable configuration is reachable — the static risk is
//     a proven persistent oscillation (the paper's STABLE I-BGP WITH ROUTE
//     REFLECTION instance answered "no");
//   - Info, when a stable configuration is reachable — the risk pattern is
//     at most a transient oscillation from cold start;
//   - Info noting truncation, when the state budget ran out and the static
//     verdict stands unimproved.
//
// Reports that are not RISK are left untouched. Confirm reports whether a
// persistent oscillation was proven.
func Confirm(r *Report, sys *topology.System, opts ConfirmOptions) bool {
	if r.Verdict != VerdictRisk {
		return false
	}
	e := protocol.New(sys, protocol.Classic, selection.Options{})
	a := explore.Reachable(e, explore.Options{
		Mode:      explore.SingletonsPlusAll,
		MaxStates: opts.MaxStates,
		Ctx:       opts.Ctx,
		Workers:   opts.Workers,
	})
	switch {
	case a.Truncated:
		r.Findings = append(r.Findings, Finding{
			Pass:     "confirm",
			Severity: Info,
			Detail: fmt.Sprintf("reachable-state search truncated after %d states; static verdict stands",
				a.States),
			Ref: "Section 5, NP-completeness",
		})
	case !a.Stabilizable():
		r.Findings = append(r.Findings, Finding{
			Pass:     "confirm",
			Severity: Risk,
			Detail: fmt.Sprintf("confirmed: no stable configuration reachable from cold start (%d states, %d transitions explored)",
				a.States, a.Transitions),
			Ref: "Section 5, STABLE I-BGP WITH ROUTE REFLECTION",
		})
		return true
	default:
		r.Findings = append(r.Findings, Finding{
			Pass:     "confirm",
			Severity: Info,
			Detail: fmt.Sprintf("stable configuration reachable (%d of %d states); risk is at most transient from cold start",
				len(a.FixedPoints), a.States),
			Ref: "Section 5, STABLE I-BGP WITH ROUTE REFLECTION",
		})
	}
	return false
}
