package lint

import (
	"strconv"
	"strings"
	"testing"

	"repro/internal/bgp"
	"repro/internal/explore"
	"repro/internal/figures"
	"repro/internal/protocol"
	"repro/internal/selection"
	"repro/internal/topology"
	"repro/internal/workload"
)

// findingOf returns the single finding of the named pass, or nil.
func findingOf(t *testing.T, r *Report, pass string) *Finding {
	t.Helper()
	var got *Finding
	for i := range r.Findings {
		if r.Findings[i].Pass == pass {
			if got != nil {
				t.Fatalf("%s: pass %s emitted more than one finding", r.Source, pass)
			}
			got = &r.Findings[i]
		}
	}
	return got
}

// parseConfig turns a Witness configuration (router name -> "p3"/"none")
// back into a per-node advertisement assignment.
func parseConfig(t *testing.T, sys *topology.System, cfg map[string]string) []bgp.PathSet {
	t.Helper()
	if len(cfg) != sys.N() {
		t.Fatalf("witness config names %d routers, system has %d", len(cfg), sys.N())
	}
	adv := make([]bgp.PathSet, sys.N())
	for name, label := range cfg {
		u, ok := sys.NodeByName(name)
		if !ok {
			t.Fatalf("witness names unknown router %q", name)
		}
		if label == "none" {
			continue
		}
		id, err := strconv.Atoi(strings.TrimPrefix(label, "p"))
		if err != nil || !strings.HasPrefix(label, "p") {
			t.Fatalf("witness selection %q for %s is neither none nor p<ID>", label, name)
		}
		adv[u].Add(bgp.PathID(id))
	}
	return adv
}

// replayStable asserts that a witness configuration is a true protocol
// fixed point under classic I-BGP.
func replayStable(t *testing.T, source string, sys *topology.System, cfg map[string]string) {
	t.Helper()
	adv := parseConfig(t, sys, cfg)
	e := protocol.New(sys, protocol.Classic, selection.Options{})
	if !e.InducedConfig(adv) || !e.Stable() {
		t.Errorf("%s: witness configuration does not replay as a stable fixed point", source)
	}
}

// TestProveFigureAgreement checks the exact prover against ground truth on
// every bundled paper figure: the exact-mode verdict must equal the
// figure's oscillation flag (in particular, zero false negatives), and the
// prove-pass outcomes must match the brute-force stable-solution
// enumeration wherever the enumeration completes.
func TestProveFigureAgreement(t *testing.T) {
	for _, ent := range figures.All() {
		f := ent.Build()
		r := ProveSystem(ent.Name, f.Sys)

		want := VerdictPass
		if ent.Oscillates {
			want = VerdictRisk
		}
		if r.Verdict != want {
			t.Errorf("fig %s: exact verdict %v, ground truth %v", ent.Name, r.Verdict, want)
		}

		stable := findingOf(t, r, "prove-stable")
		if stable == nil {
			t.Fatalf("fig %s: no prove-stable finding", ent.Name)
		}
		wheel := findingOf(t, r, "prove-wheel")
		if (stable.Severity == Info) != (wheel != nil) {
			t.Fatalf("fig %s: prove-wheel should fire exactly when a stable routing exists", ent.Name)
		}

		// Brute-force ground truth; a small budget keeps the test fast and
		// the large figures (13) are exactly the ones the prover decides
		// without enumeration.
		e := protocol.New(f.Sys, protocol.Classic, selection.Options{})
		enum := explore.EnumerateStableClassic(e, 2_000_000)
		if enum.Truncated {
			continue
		}
		if gotStable := stable.Severity == Info; gotStable != (len(enum.Solutions) > 0) {
			t.Errorf("fig %s: prove-stable SAT=%v, enumeration found %d stable solutions",
				ent.Name, gotStable, len(enum.Solutions))
		}
		if len(enum.Solutions) > 0 {
			if gotMulti := wheel.Severity == Risk; gotMulti != (len(enum.Solutions) > 1) {
				t.Errorf("fig %s: prove-wheel risk=%v, enumeration found %d stable solutions",
					ent.Name, gotMulti, len(enum.Solutions))
			}
		}
	}
}

// TestProveWitnessReplay replays every decoded witness through the
// protocol engine: stable configurations must be true fixed points, and
// dispute wheels must be genuine dependency cycles (consecutive spokes
// are I-BGP peers whose transferred advertisements differ between the two
// configurations).
func TestProveWitnessReplay(t *testing.T) {
	sawWheel := false
	for _, ent := range figures.All() {
		f := ent.Build()
		r := ProveSystem(ent.Name, f.Sys)

		if stable := findingOf(t, r, "prove-stable"); stable.Severity == Info {
			if stable.Witness == nil || stable.Witness.Config == nil {
				t.Fatalf("fig %s: SAT prove-stable finding carries no configuration witness", ent.Name)
			}
			replayStable(t, "fig "+ent.Name+" config", f.Sys, stable.Witness.Config)
		}

		wheel := findingOf(t, r, "prove-wheel")
		if wheel == nil || wheel.Severity != Risk {
			continue
		}
		w := wheel.Witness
		if w == nil || w.Config == nil || w.Alt == nil {
			t.Fatalf("fig %s: prove-wheel risk finding lacks the two configurations", ent.Name)
		}
		replayStable(t, "fig "+ent.Name+" hold", f.Sys, w.Config)
		replayStable(t, "fig "+ent.Name+" alt", f.Sys, w.Alt)
		if len(w.Wheel) < 2 {
			t.Fatalf("fig %s: dispute wheel has %d spokes, need a cycle", ent.Name, len(w.Wheel))
		}
		sawWheel = true
		for i, s := range w.Wheel {
			if s.Hold == s.Alt {
				t.Errorf("fig %s: spoke %s does not change selection between the configurations", ent.Name, s.Node)
			}
			u, ok := f.Sys.NodeByName(s.Node)
			if !ok {
				t.Fatalf("fig %s: wheel names unknown router %q", ent.Name, s.Node)
			}
			// The next spoke (cyclically) is the cause: a peer whose
			// transferred advertisement differs between the configurations.
			c := w.Wheel[(i+1)%len(w.Wheel)]
			v, ok := f.Sys.NodeByName(c.Node)
			if !ok {
				t.Fatalf("fig %s: wheel names unknown router %q", ent.Name, c.Node)
			}
			if !f.Sys.HasSession(u, v) {
				t.Errorf("fig %s: wheel edge %s -> %s is not an I-BGP session", ent.Name, s.Node, c.Node)
				continue
			}
			transferred := func(label string) string {
				if label == "none" {
					return "none"
				}
				id, _ := strconv.Atoi(strings.TrimPrefix(label, "p"))
				if f.Sys.Transfers(v, u, f.Sys.Exit(bgp.PathID(id))) {
					return label
				}
				return "none"
			}
			if transferred(c.Hold) == transferred(c.Alt) {
				t.Errorf("fig %s: wheel edge %s -> %s: the cause's transferred advertisement does not differ",
					ent.Name, s.Node, c.Node)
			}
		}
	}
	if !sawWheel {
		t.Error("no figure produced a dispute-wheel witness (figure 2 should)")
	}
}

// TestProveMatchesEnumeration cross-checks the CNF encoding against the
// brute-force stable-solution enumeration on a family of small generated
// systems: existence of a stable routing and uniqueness must agree
// exactly, seed by seed.
func TestProveMatchesEnumeration(t *testing.T) {
	params := workload.Params{
		Clusters:   3,
		MinClients: 1,
		MaxClients: 2,
		ASes:       2,
		Exits:      4,
		MaxMED:     2,
		MaxCost:    8,
		ExtraLinks: 2,
	}
	seeds := 40
	if testing.Short() {
		seeds = 12
	}
	for seed := 0; seed < seeds; seed++ {
		sys, err := workload.Generate(params, int64(seed))
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		r := ProveSystem("seed", sys)
		stable := findingOf(t, r, "prove-stable")
		wheel := findingOf(t, r, "prove-wheel")

		e := protocol.New(sys, protocol.Classic, selection.Options{})
		enum := explore.EnumerateStableClassic(e, 0)
		if enum.Truncated {
			t.Fatalf("seed %d: enumeration truncated on a small system", seed)
		}
		if gotStable := stable.Severity == Info; gotStable != (len(enum.Solutions) > 0) {
			t.Errorf("seed %d: prove-stable SAT=%v, enumeration found %d stable solutions",
				seed, gotStable, len(enum.Solutions))
		}
		if stable.Severity == Info {
			replayStable(t, "seed config", sys, stable.Witness.Config)
			if gotMulti := wheel.Severity == Risk; gotMulti != (len(enum.Solutions) > 1) {
				t.Errorf("seed %d: prove-wheel risk=%v, enumeration found %d stable solutions",
					seed, gotMulti, len(enum.Solutions))
			}
		}
	}
}
