package igp

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/bgp"
)

func mustEdge(t *testing.T, g *Graph, u, v bgp.NodeID, w int64) {
	t.Helper()
	if err := g.AddEdge(u, v, w); err != nil {
		t.Fatal(err)
	}
}

func TestAddEdgeValidation(t *testing.T) {
	g := New(3)
	if err := g.AddEdge(0, 0, 1); err == nil {
		t.Fatal("self loop accepted")
	}
	if err := g.AddEdge(0, 3, 1); err == nil {
		t.Fatal("out-of-range node accepted")
	}
	if err := g.AddEdge(-1, 1, 1); err == nil {
		t.Fatal("negative node accepted")
	}
	if err := g.AddEdge(0, 1, 0); err == nil {
		t.Fatal("zero cost accepted")
	}
	if err := g.AddEdge(0, 1, -5); err == nil {
		t.Fatal("negative cost accepted")
	}
	if err := g.AddEdge(0, 1, 2); err != nil {
		t.Fatal(err)
	}
	if !g.HasEdge(0, 1) || !g.HasEdge(1, 0) {
		t.Fatal("edge not symmetric")
	}
	if g.EdgeCost(0, 1) != 2 {
		t.Fatalf("EdgeCost = %d", g.EdgeCost(0, 1))
	}
	if g.EdgeCost(0, 2) != Infinity {
		t.Fatal("missing edge should cost Infinity")
	}
}

func TestParallelEdgesCheapestWins(t *testing.T) {
	g := New(2)
	mustEdge(t, g, 0, 1, 9)
	mustEdge(t, g, 0, 1, 4)
	if g.EdgeCost(0, 1) != 4 {
		t.Fatalf("EdgeCost = %d, want 4", g.EdgeCost(0, 1))
	}
	sp := g.Dijkstra(0)
	if sp.Dist[1] != 4 {
		t.Fatalf("Dist = %d, want 4", sp.Dist[1])
	}
}

func TestConnected(t *testing.T) {
	g := New(4)
	mustEdge(t, g, 0, 1, 1)
	mustEdge(t, g, 1, 2, 1)
	if g.Connected() {
		t.Fatal("graph with isolated node 3 reported connected")
	}
	mustEdge(t, g, 2, 3, 1)
	if !g.Connected() {
		t.Fatal("connected graph reported disconnected")
	}
	if !New(0).Connected() || !New(1).Connected() {
		t.Fatal("trivial graphs must be connected")
	}
}

func TestDijkstraKnownDistances(t *testing.T) {
	// 0-1 (1), 1-2 (2), 0-2 (5), 2-3 (1)
	g := New(4)
	mustEdge(t, g, 0, 1, 1)
	mustEdge(t, g, 1, 2, 2)
	mustEdge(t, g, 0, 2, 5)
	mustEdge(t, g, 2, 3, 1)
	sp := g.Dijkstra(0)
	want := []int64{0, 1, 3, 4}
	for v, d := range want {
		if sp.Dist[v] != d {
			t.Fatalf("Dist[%d] = %d, want %d", v, sp.Dist[v], d)
		}
	}
	path := sp.PathTo(3)
	wantPath := []bgp.NodeID{0, 1, 2, 3}
	if len(path) != len(wantPath) {
		t.Fatalf("PathTo(3) = %v", path)
	}
	for i := range path {
		if path[i] != wantPath[i] {
			t.Fatalf("PathTo(3) = %v, want %v", path, wantPath)
		}
	}
	if nh := sp.NextHop(3); nh != 1 {
		t.Fatalf("NextHop(3) = %d, want 1", nh)
	}
	if nh := sp.NextHop(0); nh != 0 {
		t.Fatalf("NextHop(source) = %d, want 0", nh)
	}
}

func TestDijkstraUnreachable(t *testing.T) {
	g := New(3)
	mustEdge(t, g, 0, 1, 1)
	sp := g.Dijkstra(0)
	if sp.Dist[2] != Infinity {
		t.Fatal("unreachable node has finite distance")
	}
	if sp.PathTo(2) != nil {
		t.Fatal("PathTo(unreachable) should be nil")
	}
	if sp.NextHop(2) != -1 {
		t.Fatal("NextHop(unreachable) should be -1")
	}
}

func TestDijkstraTieBreakHopsThenParent(t *testing.T) {
	// Two equal-cost paths 0->3: 0-1-3 (2 hops) and 0-2-3 (2 hops), plus
	// an equal-cost 3-hop path 0-1-4-3. Deterministic choice must prefer
	// fewer hops, then the smaller parent.
	g := New(5)
	mustEdge(t, g, 0, 1, 1)
	mustEdge(t, g, 1, 3, 2)
	mustEdge(t, g, 0, 2, 1)
	mustEdge(t, g, 2, 3, 2)
	mustEdge(t, g, 1, 4, 1)
	mustEdge(t, g, 4, 3, 1)
	sp := g.Dijkstra(0)
	if sp.Dist[3] != 3 {
		t.Fatalf("Dist[3] = %d, want 3", sp.Dist[3])
	}
	path := sp.PathTo(3)
	if len(path) != 3 {
		t.Fatalf("tie-break should pick a 2-hop path, got %v", path)
	}
	if path[1] != 1 {
		t.Fatalf("tie-break should prefer parent 1, got %v", path)
	}
}

func TestDijkstraDeterministicUnderEdgePermutation(t *testing.T) {
	type e struct {
		u, v bgp.NodeID
		w    int64
	}
	edges := []e{{0, 1, 1}, {0, 2, 1}, {1, 3, 1}, {2, 3, 1}, {3, 4, 2}, {1, 4, 3}, {2, 4, 3}}
	var ref *ShortestPaths
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 20; trial++ {
		perm := rng.Perm(len(edges))
		g := New(5)
		for _, i := range perm {
			mustEdge(t, g, edges[i].u, edges[i].v, edges[i].w)
		}
		sp := g.Dijkstra(0)
		if ref == nil {
			ref = sp
			continue
		}
		for v := 0; v < 5; v++ {
			if sp.Dist[v] != ref.Dist[v] || sp.Parent[v] != ref.Parent[v] {
				t.Fatalf("trial %d: tree differs at node %d (parent %d vs %d)",
					trial, v, sp.Parent[v], ref.Parent[v])
			}
		}
	}
}

func TestAllPairsConsistency(t *testing.T) {
	g := New(4)
	mustEdge(t, g, 0, 1, 2)
	mustEdge(t, g, 1, 2, 2)
	mustEdge(t, g, 2, 3, 2)
	mustEdge(t, g, 0, 3, 7)
	ap := NewAllPairs(g)
	for u := 0; u < 4; u++ {
		for v := 0; v < 4; v++ {
			if ap.Dist(bgp.NodeID(u), bgp.NodeID(v)) != ap.Dist(bgp.NodeID(v), bgp.NodeID(u)) {
				t.Fatalf("asymmetric distance %d-%d", u, v)
			}
		}
	}
	if ap.Dist(0, 3) != 6 {
		t.Fatalf("Dist(0,3) = %d, want 6", ap.Dist(0, 3))
	}
	if nh := ap.NextHop(0, 3); nh != 1 {
		t.Fatalf("NextHop(0,3) = %d, want 1", nh)
	}
}

func randomConnectedGraph(rng *rand.Rand, n int) *Graph {
	g := New(n)
	for v := 1; v < n; v++ {
		u := rng.Intn(v)
		_ = g.AddEdge(bgp.NodeID(u), bgp.NodeID(v), int64(1+rng.Intn(20)))
	}
	extra := rng.Intn(2 * n)
	for i := 0; i < extra; i++ {
		u, v := rng.Intn(n), rng.Intn(n)
		if u != v {
			_ = g.AddEdge(bgp.NodeID(u), bgp.NodeID(v), int64(1+rng.Intn(20)))
		}
	}
	return g
}

func TestQuickTriangleInequality(t *testing.T) {
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 3 + rng.Intn(10)
		g := randomConnectedGraph(rng, n)
		ap := NewAllPairs(g)
		for u := 0; u < n; u++ {
			for v := 0; v < n; v++ {
				for w := 0; w < n; w++ {
					duv := ap.Dist(bgp.NodeID(u), bgp.NodeID(v))
					duw := ap.Dist(bgp.NodeID(u), bgp.NodeID(w))
					dwv := ap.Dist(bgp.NodeID(w), bgp.NodeID(v))
					if duw != Infinity && dwv != Infinity && duv > duw+dwv {
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickPathCostMatchesDist(t *testing.T) {
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 3 + rng.Intn(10)
		g := randomConnectedGraph(rng, n)
		sp := g.Dijkstra(0)
		for v := 1; v < n; v++ {
			path := sp.PathTo(bgp.NodeID(v))
			if path == nil {
				return false // connected by construction
			}
			var cost int64
			for i := 1; i < len(path); i++ {
				cost += g.EdgeCost(path[i-1], path[i])
			}
			// The reconstructed path uses specific edges; its cost can
			// only match Dist if each step uses the cheapest parallel
			// edge, which EdgeCost reports.
			if cost != sp.Dist[v] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestCompleteMetric(t *testing.T) {
	g := New(4)
	mustEdge(t, g, 0, 1, 3)
	mustEdge(t, g, 1, 2, 4)
	mustEdge(t, g, 2, 3, 5)
	before := NewAllPairs(g.Clone())
	if err := g.CompleteMetric(); err != nil {
		t.Fatal(err)
	}
	for u := 0; u < 4; u++ {
		for v := 0; v < 4; v++ {
			if u != v && !g.HasEdge(bgp.NodeID(u), bgp.NodeID(v)) {
				t.Fatalf("missing edge %d-%d after completion", u, v)
			}
		}
	}
	after := NewAllPairs(g)
	for u := 0; u < 4; u++ {
		for v := 0; v < 4; v++ {
			if before.Dist(bgp.NodeID(u), bgp.NodeID(v)) != after.Dist(bgp.NodeID(u), bgp.NodeID(v)) {
				t.Fatalf("completion changed distance %d-%d", u, v)
			}
		}
	}
	// Direct edges now realise the shortest distances: triangle inequality
	// holds edge-wise.
	for u := 0; u < 4; u++ {
		for v := 0; v < 4; v++ {
			if u != v && g.EdgeCost(bgp.NodeID(u), bgp.NodeID(v)) != after.Dist(bgp.NodeID(u), bgp.NodeID(v)) {
				t.Fatalf("edge %d-%d costlier than shortest path", u, v)
			}
		}
	}
}

func TestCompleteMetricDisconnected(t *testing.T) {
	g := New(3)
	mustEdge(t, g, 0, 1, 1)
	if err := g.CompleteMetric(); err != ErrDisconnected {
		t.Fatalf("err = %v, want ErrDisconnected", err)
	}
}

func TestCloneIndependence(t *testing.T) {
	g := New(3)
	mustEdge(t, g, 0, 1, 1)
	c := g.Clone()
	mustEdge(t, g, 1, 2, 1)
	if c.HasEdge(1, 2) {
		t.Fatal("clone shares adjacency with original")
	}
	if c.Degree(0) != 1 || g.Degree(1) != 2 {
		t.Fatal("degrees wrong after clone")
	}
}
