// Package igp models the physical graph G_P of Section 4: the undirected
// weighted graph of routers and physical links inside AS0, and the IGP
// shortest-path machinery the BGP selection rules consume.
//
// The paper requires the shortest path SP(u, v) between two routers to be
// chosen deterministically from the least-cost paths. This package breaks
// cost ties lexicographically, by hop count and then by node identifier
// along the path, so that the selected path does not depend on edge
// insertion order.
package igp

import (
	"errors"
	"fmt"

	"repro/internal/bgp"
)

// Infinity is the distance reported between disconnected nodes.
const Infinity int64 = 1<<62 - 1

type edge struct {
	to bgp.NodeID
	w  int64
}

// Graph is an undirected graph with positive integer edge costs over nodes
// 0..N-1. The zero value is unusable; call New.
type Graph struct {
	n   int
	adj [][]edge
}

// New returns an empty graph over n nodes.
func New(n int) *Graph {
	if n < 0 {
		n = 0
	}
	return &Graph{n: n, adj: make([][]edge, n)}
}

// N returns the number of nodes.
func (g *Graph) N() int { return g.n }

// AddEdge inserts an undirected edge of cost w between u and v. Costs must
// be positive (the paper models IGP metrics as positive integers). Parallel
// edges are permitted; only the cheapest matters.
func (g *Graph) AddEdge(u, v bgp.NodeID, w int64) error {
	if int(u) < 0 || int(u) >= g.n || int(v) < 0 || int(v) >= g.n {
		return fmt.Errorf("igp: edge %d-%d out of range [0,%d)", u, v, g.n)
	}
	if u == v {
		return fmt.Errorf("igp: self loop at node %d", u)
	}
	if w <= 0 {
		return fmt.Errorf("igp: edge %d-%d has non-positive cost %d", u, v, w)
	}
	g.adj[u] = append(g.adj[u], edge{to: v, w: w})
	g.adj[v] = append(g.adj[v], edge{to: u, w: w})
	return nil
}

// HasEdge reports whether at least one edge joins u and v.
func (g *Graph) HasEdge(u, v bgp.NodeID) bool {
	for _, e := range g.adj[u] {
		if e.to == v {
			return true
		}
	}
	return false
}

// EdgeCost returns the cheapest edge cost between u and v, or Infinity when
// no edge joins them.
func (g *Graph) EdgeCost(u, v bgp.NodeID) int64 {
	best := Infinity
	for _, e := range g.adj[u] {
		if e.to == v && e.w < best {
			best = e.w
		}
	}
	return best
}

// Degree returns the number of incident edges of u.
func (g *Graph) Degree(u bgp.NodeID) int { return len(g.adj[u]) }

// Clone returns a deep copy of the graph.
func (g *Graph) Clone() *Graph {
	c := New(g.n)
	for u := range g.adj {
		c.adj[u] = append([]edge(nil), g.adj[u]...)
	}
	return c
}

// Connected reports whether the graph is connected (vacuously true for
// graphs with fewer than two nodes).
func (g *Graph) Connected() bool {
	if g.n <= 1 {
		return true
	}
	seen := make([]bool, g.n)
	stack := []bgp.NodeID{0}
	seen[0] = true
	count := 1
	for len(stack) > 0 {
		u := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, e := range g.adj[u] {
			if !seen[e.to] {
				seen[e.to] = true
				count++
				stack = append(stack, e.to)
			}
		}
	}
	return count == g.n
}

// ShortestPaths holds the single-source shortest path tree from one source,
// with the paper's deterministic tie-breaking baked in.
type ShortestPaths struct {
	Source bgp.NodeID
	Dist   []int64      // Dist[v] = cost of SP(Source, v); Infinity if unreachable
	Parent []bgp.NodeID // Parent[v] = predecessor of v on SP(Source, v); -1 at source/unreachable
	hops   []int
}

// Dijkstra computes shortest paths from src. Ties on cost are broken first
// by hop count and then by the smaller parent identifier, which makes the
// chosen tree independent of adjacency order.
func (g *Graph) Dijkstra(src bgp.NodeID) *ShortestPaths {
	sp := &ShortestPaths{
		Source: src,
		Dist:   make([]int64, g.n),
		Parent: make([]bgp.NodeID, g.n),
		hops:   make([]int, g.n),
	}
	for i := range sp.Dist {
		sp.Dist[i] = Infinity
		sp.Parent[i] = -1
		sp.hops[i] = 1 << 30
	}
	if int(src) < 0 || int(src) >= g.n {
		return sp
	}
	sp.Dist[src] = 0
	sp.hops[src] = 0

	h := &nodeHeap{}
	h.push(item{node: src, dist: 0, hops: 0})
	done := make([]bool, g.n)
	for h.len() > 0 {
		it := h.pop()
		u := it.node
		if done[u] {
			continue
		}
		done[u] = true
		for _, e := range g.adj[u] {
			v := e.to
			if done[v] {
				continue
			}
			nd := sp.Dist[u] + e.w
			nh := sp.hops[u] + 1
			better := nd < sp.Dist[v] ||
				(nd == sp.Dist[v] && nh < sp.hops[v]) ||
				(nd == sp.Dist[v] && nh == sp.hops[v] && sp.Parent[v] >= 0 && u < sp.Parent[v])
			if better {
				sp.Dist[v] = nd
				sp.hops[v] = nh
				sp.Parent[v] = u
				h.push(item{node: v, dist: nd, hops: nh})
			}
		}
	}
	return sp
}

// PathTo returns the node sequence of SP(Source, v), inclusive of both
// endpoints, or nil when v is unreachable.
func (sp *ShortestPaths) PathTo(v bgp.NodeID) []bgp.NodeID {
	if int(v) < 0 || int(v) >= len(sp.Dist) || sp.Dist[v] == Infinity {
		return nil
	}
	var rev []bgp.NodeID
	for x := v; ; x = sp.Parent[x] {
		rev = append(rev, x)
		if x == sp.Source {
			break
		}
		if sp.Parent[x] < 0 {
			return nil
		}
	}
	for i, j := 0, len(rev)-1; i < j; i, j = i+1, j-1 {
		rev[i], rev[j] = rev[j], rev[i]
	}
	return rev
}

// NextHop returns the first node after Source on SP(Source, v). It returns
// Source itself when v == Source and -1 when v is unreachable.
func (sp *ShortestPaths) NextHop(v bgp.NodeID) bgp.NodeID {
	if v == sp.Source {
		return v
	}
	p := sp.PathTo(v)
	if len(p) < 2 {
		return -1
	}
	return p[1]
}

// AllPairs caches single-source trees for every node of a graph. It is the
// lookup structure the protocol engines use for route metrics.
type AllPairs struct {
	g     *Graph
	trees []*ShortestPaths
}

// NewAllPairs computes (lazily) all-pairs shortest paths for g.
func NewAllPairs(g *Graph) *AllPairs {
	return &AllPairs{g: g, trees: make([]*ShortestPaths, g.n)}
}

// From returns the shortest-path tree rooted at u.
func (ap *AllPairs) From(u bgp.NodeID) *ShortestPaths {
	if ap.trees[u] == nil {
		ap.trees[u] = ap.g.Dijkstra(u)
	}
	return ap.trees[u]
}

// Dist returns cost(SP(u, v)), or Infinity when disconnected.
func (ap *AllPairs) Dist(u, v bgp.NodeID) int64 { return ap.From(u).Dist[v] }

// Path returns SP(u, v) inclusive of endpoints.
func (ap *AllPairs) Path(u, v bgp.NodeID) []bgp.NodeID { return ap.From(u).PathTo(v) }

// NextHop returns the first node after u on SP(u, v).
func (ap *AllPairs) NextHop(u, v bgp.NodeID) bgp.NodeID { return ap.From(u).NextHop(v) }

// ErrDisconnected is returned by CompleteMetric when the base graph does not
// connect all nodes.
var ErrDisconnected = errors.New("igp: graph is not connected")

// CompleteMetric adds, for every node pair without an edge, an edge whose
// cost equals the current shortest-path distance, as in the NP-hardness
// construction of Section 5 ("setting these costs one at a time to be equal
// to the shortest path in the graph consisting of the edges with costs so
// far defined"). The result satisfies the triangle inequality and preserves
// all shortest-path distances.
func (g *Graph) CompleteMetric() error {
	if !g.Connected() {
		return ErrDisconnected
	}
	ap := NewAllPairs(g.Clone())
	for u := 0; u < g.n; u++ {
		for v := u + 1; v < g.n; v++ {
			if !g.HasEdge(bgp.NodeID(u), bgp.NodeID(v)) {
				d := ap.Dist(bgp.NodeID(u), bgp.NodeID(v))
				if err := g.AddEdge(bgp.NodeID(u), bgp.NodeID(v), d); err != nil {
					return err
				}
			}
		}
	}
	return nil
}

// item is a priority-queue entry.
type item struct {
	node bgp.NodeID
	dist int64
	hops int
}

func (a item) less(b item) bool {
	if a.dist != b.dist {
		return a.dist < b.dist
	}
	if a.hops != b.hops {
		return a.hops < b.hops
	}
	return a.node < b.node
}

// nodeHeap is a minimal binary min-heap specialised to item, avoiding the
// interface boxing of container/heap in the hot path.
type nodeHeap struct {
	xs []item
}

func (h *nodeHeap) len() int { return len(h.xs) }

func (h *nodeHeap) push(it item) {
	h.xs = append(h.xs, it)
	i := len(h.xs) - 1
	for i > 0 {
		p := (i - 1) / 2
		if !h.xs[i].less(h.xs[p]) {
			break
		}
		h.xs[i], h.xs[p] = h.xs[p], h.xs[i]
		i = p
	}
}

func (h *nodeHeap) pop() item {
	top := h.xs[0]
	last := len(h.xs) - 1
	h.xs[0] = h.xs[last]
	h.xs = h.xs[:last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		small := i
		if l < len(h.xs) && h.xs[l].less(h.xs[small]) {
			small = l
		}
		if r < len(h.xs) && h.xs[r].less(h.xs[small]) {
			small = r
		}
		if small == i {
			break
		}
		h.xs[i], h.xs[small] = h.xs[small], h.xs[i]
		i = small
	}
	return top
}
