package faults

import (
	"strings"
	"testing"
)

func TestFateIsPureAndSeedSensitive(t *testing.T) {
	p := &Plan{Seed: 7, Drop: 0.2, Duplicate: 0.1, Reorder: 0.1, Delay: 0.3, MaxExtraDelay: 20}
	if err := p.Validate(0); err != nil {
		t.Fatal(err)
	}
	// Purity: the same (now, session, seq) always yields the same fate.
	for seq := 0; seq < 200; seq++ {
		a := p.Fate(5, 1, 2, seq)
		b := p.Fate(5, 1, 2, seq)
		if a != b {
			t.Fatalf("seq %d: fate not pure: %+v vs %+v", seq, a, b)
		}
	}
	// Sensitivity: a different seed changes at least one fate over a
	// modest window (overwhelmingly likely for these probabilities).
	q := *p
	q.Seed = 8
	same := true
	for seq := 0; seq < 200 && same; seq++ {
		if p.Fate(5, 1, 2, seq) != q.Fate(5, 1, 2, seq) {
			same = false
		}
	}
	if same {
		t.Fatal("seeds 7 and 8 impose identical fates over 200 messages")
	}
	// Directionality: u->v and v->u are independent streams.
	diff := false
	for seq := 0; seq < 200 && !diff; seq++ {
		if p.Fate(5, 1, 2, seq) != p.Fate(5, 2, 1, seq) {
			diff = true
		}
	}
	if !diff {
		t.Fatal("fates identical in both session directions over 200 messages")
	}
}

func TestFateRatesRoughlyMatchProbabilities(t *testing.T) {
	p := &Plan{Seed: 42, Drop: 0.25, Delay: 0.5, MaxExtraDelay: 10}
	const n = 4000
	drops, delays := 0, 0
	for seq := 0; seq < n; seq++ {
		f := p.Fate(0, 0, 1, seq)
		if f.Drop {
			drops++
		}
		if f.ExtraDelay > 0 {
			if f.ExtraDelay < 1 || f.ExtraDelay > 10 {
				t.Fatalf("ExtraDelay %d outside [1,10]", f.ExtraDelay)
			}
			delays++
		}
	}
	if fr := float64(drops) / n; fr < 0.18 || fr > 0.32 {
		t.Fatalf("drop rate %.3f far from 0.25", fr)
	}
	// Delays only fire on non-dropped messages.
	if fr := float64(delays) / n; fr < 0.28 || fr > 0.45 {
		t.Fatalf("delay rate %.3f far from 0.75*0.5", fr)
	}
}

func TestHorizonSilencesPerMessageFaults(t *testing.T) {
	p := &Plan{Seed: 1, Drop: 1, Horizon: 100}
	if err := p.Validate(0); err != nil {
		t.Fatal(err)
	}
	if f := p.Fate(99, 0, 1, 0); !f.Drop {
		t.Fatal("drop=1 did not drop before the horizon")
	}
	for _, now := range []int64{100, 101, 1 << 40} {
		if f := p.Fate(now, 0, 1, 0); !f.Clean() {
			t.Fatalf("fault fired at t=%d, at/after horizon 100: %+v", now, f)
		}
	}
}

func TestValidateRejectsBadPlans(t *testing.T) {
	cases := []Plan{
		{Drop: -0.1},
		{Drop: 1.5},
		{Duplicate: 2},
		{MaxExtraDelay: -1},
		{Horizon: -5},
		{Resets: []Reset{{A: 0, B: 0, At: 0, Downtime: 10}}},
		{Resets: []Reset{{A: 0, B: 1, At: -1, Downtime: 10}}},
		{Resets: []Reset{{A: 0, B: 1, At: 0, Downtime: 0}}},
		{Horizon: 100, Resets: []Reset{{A: 0, B: 1, At: 90, Downtime: 20}}},
		{Resets: []Reset{{A: 0, B: 9, At: 0, Downtime: 1}}}, // with nodes=3
	}
	for i, p := range cases {
		if err := p.Validate(3); err == nil {
			t.Errorf("case %d: Validate accepted bad plan %+v", i, p)
		}
	}
	good := Plan{Seed: 3, Drop: 0.5, Horizon: 100,
		Resets: []Reset{{A: 0, B: 2, At: 10, Downtime: 30}}}
	if err := good.Validate(3); err != nil {
		t.Fatalf("Validate rejected a well-formed plan: %v", err)
	}
}

func TestResetsForFiltersAndSorts(t *testing.T) {
	p := &Plan{Resets: []Reset{
		{A: 2, B: 1, At: 50, Downtime: 5},
		{A: 0, B: 3, At: 10, Downtime: 5},
		{A: 1, B: 2, At: 20, Downtime: 5},
	}}
	rs := p.ResetsFor(1, 2)
	if len(rs) != 2 || rs[0].At != 20 || rs[1].At != 50 {
		t.Fatalf("ResetsFor(1,2) = %+v, want the two 1-2 resets sorted by time", rs)
	}
	// Undirected: both orders see the same schedule.
	if got := p.ResetsFor(2, 1); len(got) != 2 || got[0] != rs[0] || got[1] != rs[1] {
		t.Fatalf("ResetsFor(2,1) = %+v, want %+v", got, rs)
	}
	if got := p.ResetsFor(0, 1); got != nil {
		t.Fatalf("ResetsFor(0,1) = %+v, want none", got)
	}
}

func TestParseSpecRoundTrip(t *testing.T) {
	spec := "seed=7,drop=0.05,dup=0.02,reorder=0.01,delay=0.1,maxdelay=30,reset=0-1@100+50;2-3@200+40,horizon=600"
	p, err := ParseSpec(spec)
	if err != nil {
		t.Fatal(err)
	}
	if p.Seed != 7 || p.Drop != 0.05 || p.Duplicate != 0.02 || p.Reorder != 0.01 ||
		p.Delay != 0.1 || p.MaxExtraDelay != 30 || p.Horizon != 600 {
		t.Fatalf("parsed scalars wrong: %+v", p)
	}
	want := []Reset{{A: 0, B: 1, At: 100, Downtime: 50}, {A: 2, B: 3, At: 200, Downtime: 40}}
	if len(p.Resets) != 2 || p.Resets[0] != want[0] || p.Resets[1] != want[1] {
		t.Fatalf("parsed resets %+v, want %+v", p.Resets, want)
	}
	// String round-trips through ParseSpec to an identical plan.
	p2, err := ParseSpec(p.String())
	if err != nil {
		t.Fatalf("re-parse of %q: %v", p.String(), err)
	}
	if p2.String() != p.String() {
		t.Fatalf("round trip changed the plan: %q vs %q", p.String(), p2.String())
	}
}

func TestParseSpecErrors(t *testing.T) {
	for _, spec := range []string{
		"drop",                     // not key=value
		"bogus=1",                  // unknown key
		"drop=x",                   // bad float
		"drop=2",                   // out of range
		"reset=0-1",                // missing timing
		"reset=01@5+5",             // missing session dash
		"reset=0-1@5",              // missing downtime
		"reset=0-1@a+5",            // bad int
		"horizon=-1",               // negative
		"horizon=-5",               // negative, larger magnitude
		"maxdelay=-1",              // negative delay bound
		"reset=0-0@5+5",            // self loop
		"reset=0-1@-5+5",           // negative reset time
		"reset=0-1@5+0",            // zero downtime
		"reset=0-1@5+-5",           // negative downtime
		"horizon=10,drop=-1",       // probability range
		"horizon=10,reset=0-1@8+5", // reopens after the horizon
	} {
		if _, err := ParseSpec(spec); err == nil {
			t.Errorf("ParseSpec(%q) accepted a malformed spec", spec)
		}
	}
	if p, err := ParseSpec("  "); err != nil || p.Active() {
		t.Fatalf("empty spec should parse to an inactive plan, got %+v, %v", p, err)
	}
}

func TestRandomPlanIsPureAndValid(t *testing.T) {
	cfg := RandomConfig{Drop: 0.05, Duplicate: 0.02, Delay: 0.1, MaxExtraDelay: 20, Resets: 3, Horizon: 500}
	a, err := RandomPlan(11, 6, cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RandomPlan(11, 6, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Fatalf("RandomPlan not pure: %q vs %q", a, b)
	}
	if len(a.Resets) != 3 {
		t.Fatalf("want 3 resets, got %+v", a.Resets)
	}
	for _, r := range a.Resets {
		if r.A == r.B || int(r.A) >= 6 || int(r.B) >= 6 {
			t.Fatalf("reset endpoints outside topology: %+v", r)
		}
		if r.At+r.Downtime > a.Horizon {
			t.Fatalf("reset %+v reopens after horizon %d", r, a.Horizon)
		}
	}
	if c, _ := RandomPlan(12, 6, cfg); c.String() == a.String() {
		t.Fatal("different seeds derived identical plans")
	}
	if _, err := RandomPlan(1, 1, cfg); err == nil {
		t.Fatal("RandomPlan accepted resets over a single-router system")
	}
	if _, err := RandomPlan(1, 6, RandomConfig{Resets: 1}); err == nil {
		t.Fatal("RandomPlan accepted resets without a horizon")
	}
}

func TestSpecStringOmitsInactiveFields(t *testing.T) {
	p := &Plan{Seed: 3, Drop: 0.5}
	s := p.String()
	if strings.Contains(s, "dup") || strings.Contains(s, "reset") || strings.Contains(s, "horizon") {
		t.Fatalf("String rendered inactive fields: %q", s)
	}
	var nilPlan *Plan
	if nilPlan.String() != "" || nilPlan.Active() || !nilPlan.Fate(0, 0, 1, 0).Clean() {
		t.Fatal("nil plan must be inert")
	}
}
