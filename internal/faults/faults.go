// Package faults is the deterministic fault-injection layer shared by both
// operational substrates: a seeded Plan of wire-level fault actions —
// drop, duplicate, reorder, delay and session reset/reopen — that the
// discrete-event simulator (package msgsim) applies per hop and the TCP
// speakers (package speaker) apply at the session layer.
//
// Determinism is the design constraint, mirroring the campaign engine's
// purity contract: a message's fate is a pure function of (plan seed,
// session, per-session sequence number), computed by hashing rather than
// by drawing from shared RNG state. Two substrates — or two runs of the
// same substrate under different goroutine interleavings — therefore
// impose the *same* per-message fault pattern for the same plan, which is
// what makes chaos aggregates byte-identical across shard and worker
// counts and msgsim fault traces reproducible byte for byte.
//
// The paper's Section 7 guarantee (Lemmas 7.1-7.7) quantifies over "every
// message ordering and timing"; a fault plan whose faults eventually cease
// (Horizon) is one more adversarial ordering, so the modified protocol
// must re-converge to the unique Lemma 7.4 configuration once the plan
// goes quiet. Package chaos asserts exactly that.
package faults

import (
	"errors"
	"fmt"
	"sort"
	"strconv"
	"strings"

	"repro/internal/bgp"
)

// Fate is the wire-level destiny of one message, decided at send time.
type Fate struct {
	// Drop loses the message entirely (it still counts as sent).
	Drop bool
	// Duplicate delivers a second copy, DupDelay ticks after the first.
	Duplicate bool
	// Reorder exempts the message from the session's FIFO clamp so it may
	// overtake earlier messages (msgsim; the TCP byte stream cannot
	// reorder, so the session layer ignores it).
	Reorder bool
	// ExtraDelay is added transit delay for the message itself.
	ExtraDelay int64
	// DupDelay is the duplicate copy's additional transit delay relative
	// to the original (Duplicate fates only; always positive for them).
	DupDelay int64
}

// Clean reports whether the message passes through unharmed.
func (f Fate) Clean() bool {
	return !f.Drop && !f.Duplicate && !f.Reorder && f.ExtraDelay == 0
}

// Reset schedules one session reset: the session between A and B goes
// down at time At and reopens at At+Downtime. While down, both ends flush
// every route learned from the dead peer (RFC 4271 §8.2), messages in
// flight on the session are lost, and on reopen both ends re-advertise
// their full current state.
type Reset struct {
	A, B     bgp.NodeID
	At       int64
	Downtime int64
}

// Plan is one seeded fault schedule. The zero value injects nothing.
// Plans are immutable after Validate; substrates share them freely.
type Plan struct {
	// Seed keys the per-message fate hash.
	Seed int64
	// Drop, Duplicate, Reorder and Delay are per-message probabilities in
	// [0, 1].
	Drop, Duplicate, Reorder, Delay float64
	// MaxExtraDelay bounds the extra transit delay of delayed (and
	// duplicated) messages; fates draw uniformly from [1, MaxExtraDelay].
	// Zero with Delay > 0 defaults to 50.
	MaxExtraDelay int64
	// Resets are the scheduled session resets, applied in addition to the
	// per-message fates.
	Resets []Reset
	// Horizon is the time after which the plan goes quiet: no per-message
	// fault fires at or after it, and every reset must have reopened by
	// it. Zero means no horizon (faults never cease) — such plans carry no
	// re-convergence guarantee.
	Horizon int64
}

// Active reports whether the plan can inject any fault at all.
func (p *Plan) Active() bool {
	if p == nil {
		return false
	}
	return p.Drop > 0 || p.Duplicate > 0 || p.Reorder > 0 || p.Delay > 0 || len(p.Resets) > 0
}

// Validate checks probabilities, reset shapes and the horizon contract.
// nodes bounds the reset endpoints when positive.
func (p *Plan) Validate(nodes int) error {
	for _, pr := range []struct {
		name string
		v    float64
	}{{"drop", p.Drop}, {"dup", p.Duplicate}, {"reorder", p.Reorder}, {"delay", p.Delay}} {
		if pr.v < 0 || pr.v > 1 {
			return fmt.Errorf("faults: %s probability %v outside [0,1]", pr.name, pr.v)
		}
	}
	if p.MaxExtraDelay < 0 {
		return fmt.Errorf("faults: negative MaxExtraDelay %d", p.MaxExtraDelay)
	}
	if p.Horizon < 0 {
		return fmt.Errorf("faults: negative Horizon %d", p.Horizon)
	}
	for i, r := range p.Resets {
		if r.A == r.B {
			return fmt.Errorf("faults: reset %d: session %d-%d is a self-loop", i, r.A, r.B)
		}
		if r.A < 0 || r.B < 0 || (nodes > 0 && (int(r.A) >= nodes || int(r.B) >= nodes)) {
			return fmt.Errorf("faults: reset %d: session %d-%d outside topology (%d routers)", i, r.A, r.B, nodes)
		}
		if r.At < 0 || r.Downtime <= 0 {
			return fmt.Errorf("faults: reset %d: need At >= 0 and Downtime > 0, got @%d+%d", i, r.At, r.Downtime)
		}
		if p.Horizon > 0 && r.At+r.Downtime > p.Horizon {
			return fmt.Errorf("faults: reset %d reopens at t=%d, after the horizon t=%d", i, r.At+r.Downtime, p.Horizon)
		}
	}
	return nil
}

// splitmix64 is the finalising mix of the SplitMix64 generator: a cheap,
// high-quality 64-bit hash used to derive per-message fates without any
// shared RNG state.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// unit maps a hash to a float in [0, 1).
func unit(h uint64) float64 { return float64(h>>11) / (1 << 53) }

// Fate decides the destiny of the seq-th message sent on the session
// from -> to at time now. It is a pure function of the plan and its
// arguments; per-message faults never fire at or after the horizon.
func (p *Plan) Fate(now int64, from, to bgp.NodeID, seq int) Fate {
	if p == nil {
		return Fate{}
	}
	if p.Horizon > 0 && now >= p.Horizon {
		return Fate{}
	}
	// One hash per independent decision, all derived from the same
	// (seed, session, seq) key with distinct stream tags.
	key := uint64(p.Seed)<<1 ^ uint64(uint32(from))<<40 ^ uint64(uint32(to))<<20 ^ uint64(uint32(seq))
	h := splitmix64(key)
	var f Fate
	if p.Drop > 0 && unit(splitmix64(h^1)) < p.Drop {
		f.Drop = true
		return f
	}
	if p.Duplicate > 0 && unit(splitmix64(h^2)) < p.Duplicate {
		f.Duplicate = true
	}
	if p.Reorder > 0 && unit(splitmix64(h^3)) < p.Reorder {
		f.Reorder = true
	}
	max := p.MaxExtraDelay
	if max <= 0 {
		max = 50
	}
	if p.Delay > 0 && unit(splitmix64(h^4)) < p.Delay {
		f.ExtraDelay = 1 + int64(splitmix64(h^5)%uint64(max))
	}
	if f.Duplicate {
		f.DupDelay = 1 + int64(splitmix64(h^6)%uint64(max))
	}
	return f
}

// sessionKey canonicalises an undirected session.
func sessionKey(a, b bgp.NodeID) [2]bgp.NodeID {
	if a > b {
		a, b = b, a
	}
	return [2]bgp.NodeID{a, b}
}

// ResetsFor returns the plan's resets touching the session a-b, sorted by
// time. Both substrates use it to arm per-session schedules.
func (p *Plan) ResetsFor(a, b bgp.NodeID) []Reset {
	if p == nil {
		return nil
	}
	key := sessionKey(a, b)
	var out []Reset
	for _, r := range p.Resets {
		if sessionKey(r.A, r.B) == key {
			out = append(out, r)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].At < out[j].At })
	return out
}

// RandomConfig shapes RandomPlan's derived plans.
type RandomConfig struct {
	// Drop, Duplicate, Reorder, Delay and MaxExtraDelay carry over into
	// the derived plan.
	Drop, Duplicate, Reorder, Delay float64
	MaxExtraDelay                   int64
	// Resets is the number of session resets to schedule (over random
	// sessions of a nodes-router full candidate set).
	Resets int
	// Horizon is the derived plan's horizon; resets are placed so they
	// reopen before it. Must be positive when Resets > 0.
	Horizon int64
}

// RandomPlan derives a concrete plan from a seed for an n-router system:
// the per-message probabilities carry over and Resets sessions (u != v,
// both < n) are scheduled at hashed times inside the horizon. It is a
// pure function of (seed, n, cfg) — ChaosJob uses it to fan a topology
// seed out into fault schedules.
func RandomPlan(seed int64, n int, cfg RandomConfig) (*Plan, error) {
	p := &Plan{
		Seed:          seed,
		Drop:          cfg.Drop,
		Duplicate:     cfg.Duplicate,
		Reorder:       cfg.Reorder,
		Delay:         cfg.Delay,
		MaxExtraDelay: cfg.MaxExtraDelay,
		Horizon:       cfg.Horizon,
	}
	if cfg.Resets > 0 {
		if n < 2 {
			return nil, errors.New("faults: resets need at least two routers")
		}
		if cfg.Horizon <= 0 {
			return nil, errors.New("faults: resets need a positive horizon")
		}
		for i := 0; i < cfg.Resets; i++ {
			h := splitmix64(uint64(seed) ^ 0xC4A05 ^ uint64(i)<<32)
			a := bgp.NodeID(h % uint64(n))
			b := bgp.NodeID(splitmix64(h^7) % uint64(n-1))
			if b >= a {
				b++
			}
			// Place the reset inside [0, Horizon/2) with downtime bounded
			// so it reopens comfortably before the horizon.
			at := int64(splitmix64(h^9) % uint64(cfg.Horizon/2+1))
			down := 1 + int64(splitmix64(h^11)%uint64(cfg.Horizon/4+1))
			if at+down > cfg.Horizon {
				down = cfg.Horizon - at
			}
			p.Resets = append(p.Resets, Reset{A: a, B: b, At: at, Downtime: down})
		}
	}
	if err := p.Validate(n); err != nil {
		return nil, err
	}
	return p, nil
}

// ParseSpec parses the -faults command-line syntax: a comma-separated
// key=value list. Keys: seed, drop, dup, reorder, delay (probabilities),
// maxdelay, horizon (ints), and reset, a ';'-separated list of
// A-B@AT+DOWN session resets by router index, e.g.
//
//	seed=7,drop=0.05,dup=0.02,delay=0.1,maxdelay=30,reset=0-1@100+50;2-3@200+40,horizon=600
//
// The empty string parses to an inactive plan.
func ParseSpec(spec string) (*Plan, error) {
	p := &Plan{}
	if strings.TrimSpace(spec) == "" {
		return p, nil
	}
	for _, kv := range strings.Split(spec, ",") {
		k, v, ok := strings.Cut(strings.TrimSpace(kv), "=")
		if !ok {
			return nil, fmt.Errorf("faults: spec entry %q is not key=value", kv)
		}
		var err error
		switch k {
		case "seed":
			p.Seed, err = strconv.ParseInt(v, 10, 64)
		case "drop":
			p.Drop, err = strconv.ParseFloat(v, 64)
		case "dup":
			p.Duplicate, err = strconv.ParseFloat(v, 64)
		case "reorder":
			p.Reorder, err = strconv.ParseFloat(v, 64)
		case "delay":
			p.Delay, err = strconv.ParseFloat(v, 64)
		case "maxdelay":
			p.MaxExtraDelay, err = strconv.ParseInt(v, 10, 64)
		case "horizon":
			p.Horizon, err = strconv.ParseInt(v, 10, 64)
		case "reset":
			for _, rs := range strings.Split(v, ";") {
				r, rerr := parseReset(rs)
				if rerr != nil {
					return nil, rerr
				}
				p.Resets = append(p.Resets, r)
			}
		default:
			return nil, fmt.Errorf("faults: unknown spec key %q", k)
		}
		if err != nil {
			return nil, fmt.Errorf("faults: spec key %q: %w", k, err)
		}
	}
	if err := p.Validate(0); err != nil {
		return nil, err
	}
	return p, nil
}

// parseReset parses one A-B@AT+DOWN reset clause.
func parseReset(s string) (Reset, error) {
	var r Reset
	sess, timing, ok := strings.Cut(strings.TrimSpace(s), "@")
	if !ok {
		return r, fmt.Errorf("faults: reset %q: want A-B@AT+DOWN", s)
	}
	as, bs, ok := strings.Cut(sess, "-")
	if !ok {
		return r, fmt.Errorf("faults: reset %q: session %q is not A-B", s, sess)
	}
	ats, downs, ok := strings.Cut(timing, "+")
	if !ok {
		return r, fmt.Errorf("faults: reset %q: timing %q is not AT+DOWN", s, timing)
	}
	fields := []struct {
		dst  *int64
		text string
	}{{new(int64), as}, {new(int64), bs}, {&r.At, ats}, {&r.Downtime, downs}}
	for _, f := range fields {
		v, err := strconv.ParseInt(strings.TrimSpace(f.text), 10, 64)
		if err != nil {
			return r, fmt.Errorf("faults: reset %q: %w", s, err)
		}
		*f.dst = v
	}
	r.A = bgp.NodeID(*fields[0].dst)
	r.B = bgp.NodeID(*fields[1].dst)
	return r, nil
}

// String renders the plan in ParseSpec syntax (round-trippable).
func (p *Plan) String() string {
	if p == nil {
		return ""
	}
	var parts []string
	add := func(k, v string) { parts = append(parts, k+"="+v) }
	if p.Seed != 0 {
		add("seed", strconv.FormatInt(p.Seed, 10))
	}
	prob := func(k string, v float64) {
		if v > 0 {
			add(k, strconv.FormatFloat(v, 'g', -1, 64))
		}
	}
	prob("drop", p.Drop)
	prob("dup", p.Duplicate)
	prob("reorder", p.Reorder)
	prob("delay", p.Delay)
	if p.MaxExtraDelay > 0 {
		add("maxdelay", strconv.FormatInt(p.MaxExtraDelay, 10))
	}
	if len(p.Resets) > 0 {
		rs := make([]string, len(p.Resets))
		for i, r := range p.Resets {
			rs[i] = fmt.Sprintf("%d-%d@%d+%d", r.A, r.B, r.At, r.Downtime)
		}
		add("reset", strings.Join(rs, ";"))
	}
	if p.Horizon > 0 {
		add("horizon", strconv.FormatInt(p.Horizon, 10))
	}
	return strings.Join(parts, ",")
}
