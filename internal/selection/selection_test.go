package selection

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/bgp"
)

// mk builds a candidate route for tests.
func mk(id bgp.PathID, lp, aspl int, as bgp.ASN, med int, metric int64, ebgp bool, lf int) bgp.Route {
	at := bgp.NodeID(0)
	exit := bgp.NodeID(1)
	if ebgp {
		exit = at
	}
	return bgp.Route{
		Path: bgp.ExitPath{
			ID: id, LocalPref: lp, ASPathLen: aspl, NextAS: as, MED: med, ExitPoint: exit,
		},
		At:          at,
		Metric:      metric,
		LearnedFrom: lf,
	}
}

func bestID(t *testing.T, rs []bgp.Route, opts Options) bgp.PathID {
	t.Helper()
	w, ok := Best(rs, opts)
	if !ok {
		t.Fatal("Best returned no route")
	}
	return w.Path.ID
}

func TestBestEmpty(t *testing.T) {
	if _, ok := Best(nil, Options{}); ok {
		t.Fatal("Best of empty set returned a route")
	}
}

func TestRule1LocalPref(t *testing.T) {
	rs := []bgp.Route{
		mk(0, 100, 1, 1, 0, 1, false, 1),
		mk(1, 200, 9, 2, 9, 999, false, 9), // worse on everything except LP
	}
	if got := bestID(t, rs, Options{}); got != 1 {
		t.Fatalf("best = p%d, want p1 (highest LOCAL-PREF wins)", got)
	}
}

func TestRule2ASPathLen(t *testing.T) {
	rs := []bgp.Route{
		mk(0, 100, 3, 1, 0, 1, true, 1),
		mk(1, 100, 2, 2, 9, 999, false, 9),
	}
	if got := bestID(t, rs, Options{}); got != 1 {
		t.Fatalf("best = p%d, want p1 (shortest AS-PATH wins)", got)
	}
}

func TestRule3MEDPerAS(t *testing.T) {
	// p0 and p1 share AS 1; p1 has the lower MED and must eliminate p0,
	// even though p0 has the better metric. p2 is in AS 2 and unaffected.
	rs := []bgp.Route{
		mk(0, 100, 1, 1, 5, 1, false, 1),
		mk(1, 100, 1, 1, 2, 50, false, 2),
		mk(2, 100, 1, 2, 9, 10, false, 3),
	}
	if got := bestID(t, rs, Options{}); got != 2 {
		t.Fatalf("best = p%d, want p2 (p0 MED-eliminated, p1 metric 50 > p2 metric 10)", got)
	}
}

func TestRule3MEDAcrossASNotCompared(t *testing.T) {
	// Different ASes: the huge MED of p0 is irrelevant.
	rs := []bgp.Route{
		mk(0, 100, 1, 1, 999, 1, false, 1),
		mk(1, 100, 1, 2, 0, 2, false, 2),
	}
	if got := bestID(t, rs, Options{}); got != 0 {
		t.Fatalf("best = p%d, want p0 (MEDs across ASes not compared)", got)
	}
}

func TestAlwaysCompareMED(t *testing.T) {
	rs := []bgp.Route{
		mk(0, 100, 1, 1, 999, 1, false, 1),
		mk(1, 100, 1, 2, 0, 2, false, 2),
	}
	if got := bestID(t, rs, Options{MED: AlwaysCompare}); got != 1 {
		t.Fatalf("best = p%d, want p1 under always-compare-med", got)
	}
}

func TestRule45PaperOrderEBGPFirst(t *testing.T) {
	// Paper order: the E-BGP route wins despite its worse metric.
	rs := []bgp.Route{
		mk(0, 100, 1, 1, 0, 50, true, 1),
		mk(1, 100, 1, 2, 0, 1, false, 2),
	}
	if got := bestID(t, rs, Options{Order: PaperOrder}); got != 0 {
		t.Fatalf("best = p%d, want p0 (E-BGP preferred before metric)", got)
	}
	// RFC order: minimum metric first.
	if got := bestID(t, rs, Options{Order: RFCOrder}); got != 1 {
		t.Fatalf("best = p%d, want p1 (metric before E-BGP preference)", got)
	}
}

func TestRFCOrderEBGPBreaksMetricTie(t *testing.T) {
	rs := []bgp.Route{
		mk(0, 100, 1, 1, 0, 7, false, 1),
		mk(1, 100, 1, 2, 0, 7, true, 2),
	}
	if got := bestID(t, rs, Options{Order: RFCOrder}); got != 1 {
		t.Fatalf("best = p%d, want p1 (E-BGP wins metric ties under RFC order)", got)
	}
}

func TestRule5MetricAmongIBGP(t *testing.T) {
	rs := []bgp.Route{
		mk(0, 100, 1, 1, 0, 9, false, 1),
		mk(1, 100, 1, 2, 0, 3, false, 2),
	}
	if got := bestID(t, rs, Options{}); got != 1 {
		t.Fatalf("best = p%d, want p1 (lowest metric)", got)
	}
}

func TestRule6LearnedFrom(t *testing.T) {
	rs := []bgp.Route{
		mk(0, 100, 1, 1, 0, 7, false, 20),
		mk(1, 100, 1, 2, 0, 7, false, 10),
	}
	if got := bestID(t, rs, Options{}); got != 1 {
		t.Fatalf("best = p%d, want p1 (lowest learnedFrom id)", got)
	}
}

func TestFinalTieBreakPathID(t *testing.T) {
	rs := []bgp.Route{
		mk(1, 100, 1, 2, 0, 7, false, 10),
		mk(0, 100, 1, 1, 0, 7, false, 10),
	}
	if got := bestID(t, rs, Options{}); got != 0 {
		t.Fatalf("best = p%d, want p0 (PathID as last resort)", got)
	}
}

func TestBestPermutationInvariant(t *testing.T) {
	rs := []bgp.Route{
		mk(0, 100, 2, 1, 3, 10, false, 5),
		mk(1, 100, 2, 1, 1, 20, false, 6),
		mk(2, 100, 2, 2, 0, 15, true, 7),
		mk(3, 90, 1, 3, 0, 1, true, 8),
		mk(4, 100, 2, 2, 0, 15, false, 4),
	}
	for _, opts := range []Options{{}, {Order: RFCOrder}, {MED: AlwaysCompare}} {
		want := bestID(t, rs, opts)
		rng := rand.New(rand.NewSource(1))
		for i := 0; i < 30; i++ {
			perm := make([]bgp.Route, len(rs))
			for j, k := range rng.Perm(len(rs)) {
				perm[j] = rs[k]
			}
			if got := bestID(t, perm, opts); got != want {
				t.Fatalf("opts %+v: permutation changed winner: p%d vs p%d", opts, got, want)
			}
		}
	}
}

func randomRoutes(rng *rand.Rand, n int) []bgp.Route {
	rs := make([]bgp.Route, n)
	for i := range rs {
		rs[i] = mk(bgp.PathID(i),
			90+rng.Intn(3),         // localPref
			1+rng.Intn(3),          // as-path length
			bgp.ASN(1+rng.Intn(3)), // nextAS
			rng.Intn(3),            // MED
			int64(1+rng.Intn(20)),  // metric
			rng.Intn(2) == 0,       // ebgp
			1+rng.Intn(100),        // learnedFrom
		)
	}
	return rs
}

func TestQuickBestIsAMEDSurvivor(t *testing.T) {
	// The winner of the full procedure is always in Choose^B of the same
	// set of exit paths (the paper's observation that Choose_best factors
	// through Choose^B).
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		rs := randomRoutes(rng, 1+rng.Intn(8))
		for _, mode := range []MEDMode{PerNeighborAS, AlwaysCompare} {
			w, ok := Best(rs, Options{MED: mode})
			if !ok {
				return false
			}
			paths := make([]bgp.ExitPath, len(rs))
			for i, r := range rs {
				paths[i] = r.Path
			}
			found := false
			for _, p := range SurvivorsB(paths, mode) {
				if p.ID == w.Path.ID {
					found = true
				}
			}
			if !found {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickSurvivorsBIdempotent(t *testing.T) {
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		rs := randomRoutes(rng, 1+rng.Intn(10))
		paths := make([]bgp.ExitPath, len(rs))
		for i, r := range rs {
			paths[i] = r.Path
		}
		for _, mode := range []MEDMode{PerNeighborAS, AlwaysCompare} {
			once := SurvivorsB(paths, mode)
			twice := SurvivorsB(once, mode)
			if len(once) != len(twice) {
				return false
			}
			for i := range once {
				if once[i].ID != twice[i].ID {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickSurvivorsBSoundness(t *testing.T) {
	// Every survivor has maximal LOCAL-PREF, minimal AS-PATH among those,
	// and minimal MED within its AS group; every non-survivor fails one of
	// these.
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		rs := randomRoutes(rng, 1+rng.Intn(10))
		paths := make([]bgp.ExitPath, len(rs))
		for i, r := range rs {
			paths[i] = r.Path
		}
		surv := SurvivorsB(paths, PerNeighborAS)
		in := map[bgp.PathID]bool{}
		for _, p := range surv {
			in[p.ID] = true
		}
		maxLP := paths[0].LocalPref
		for _, p := range paths {
			if p.LocalPref > maxLP {
				maxLP = p.LocalPref
			}
		}
		minLen := 1 << 30
		for _, p := range paths {
			if p.LocalPref == maxLP && p.ASPathLen < minLen {
				minLen = p.ASPathLen
			}
		}
		minMED := map[bgp.ASN]int{}
		for _, p := range paths {
			if p.LocalPref == maxLP && p.ASPathLen == minLen {
				if m, ok := minMED[p.NextAS]; !ok || p.MED < m {
					minMED[p.NextAS] = p.MED
				}
			}
		}
		for _, p := range paths {
			expect := p.LocalPref == maxLP && p.ASPathLen == minLen && p.MED == minMED[p.NextAS]
			if _, seen := minMED[p.NextAS]; !seen {
				expect = false
			}
			if in[p.ID] != expect {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestSurvivorsBEmpty(t *testing.T) {
	if got := SurvivorsB(nil, PerNeighborAS); got != nil {
		t.Fatalf("SurvivorsB(nil) = %v", got)
	}
}

func TestBestPerAS(t *testing.T) {
	rs := []bgp.Route{
		mk(0, 100, 1, 1, 0, 10, false, 1),
		mk(1, 100, 1, 1, 0, 5, false, 2),
		mk(2, 100, 1, 2, 0, 50, false, 3),
	}
	per := BestPerAS(rs, Options{})
	if len(per) != 2 {
		t.Fatalf("BestPerAS returned %d routes, want 2", len(per))
	}
	if per[0].Path.NextAS != 1 || per[0].Path.ID != 1 {
		t.Fatalf("AS 1 best = p%d, want p1", per[0].Path.ID)
	}
	if per[1].Path.NextAS != 2 || per[1].Path.ID != 2 {
		t.Fatalf("AS 2 best = p%d, want p2", per[1].Path.ID)
	}
}

func TestWaltonSetFiltersByOverallBestAttrs(t *testing.T) {
	// p0 (AS 1) is the overall best; p1 is the best through AS 2 but has a
	// longer AS-PATH, so Walton does not advertise it.
	rs := []bgp.Route{
		mk(0, 100, 1, 1, 0, 5, false, 1),
		mk(1, 100, 2, 2, 0, 1, false, 2),
	}
	ws := WaltonSet(rs, Options{})
	if len(ws) != 1 || ws[0].Path.ID != 0 {
		t.Fatalf("WaltonSet = %v, want just p0", ws)
	}
}

func TestWaltonSetOnePerAS(t *testing.T) {
	rs := []bgp.Route{
		mk(0, 100, 1, 1, 0, 5, false, 1),
		mk(1, 100, 1, 1, 0, 9, false, 2),
		mk(2, 100, 1, 2, 0, 1, false, 3),
		mk(3, 100, 1, 2, 0, 2, false, 4),
	}
	ws := WaltonSet(rs, Options{})
	if len(ws) != 2 {
		t.Fatalf("WaltonSet size = %d, want 2 (one per AS)", len(ws))
	}
	if ws[0].Path.ID != 0 || ws[1].Path.ID != 2 {
		t.Fatalf("WaltonSet = p%d, p%d; want p0, p2", ws[0].Path.ID, ws[1].Path.ID)
	}
}

func TestWaltonSetEmpty(t *testing.T) {
	if ws := WaltonSet(nil, Options{}); ws != nil {
		t.Fatalf("WaltonSet(nil) = %v", ws)
	}
}

func TestQuickWaltonContainsOverallBest(t *testing.T) {
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		rs := randomRoutes(rng, 1+rng.Intn(8))
		w, _ := Best(rs, Options{})
		for _, r := range WaltonSet(rs, Options{}) {
			if r.Path.ID == w.Path.ID {
				return true
			}
		}
		return false
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// referenceBest is a clarity-over-speed transcription of the selection
// procedure used to differential-test the optimised Best (which filters a
// single copy in place).
func referenceBest(cands []bgp.Route, opts Options) (bgp.Route, bool) {
	if len(cands) == 0 {
		return bgp.Route{}, false
	}
	cur := append([]bgp.Route(nil), cands...)
	keepWhere := func(pred func(bgp.Route) bool) {
		var next []bgp.Route
		for _, r := range cur {
			if pred(r) {
				next = append(next, r)
			}
		}
		cur = next
	}
	maxLP := cur[0].Path.LocalPref
	for _, r := range cur {
		if r.Path.LocalPref > maxLP {
			maxLP = r.Path.LocalPref
		}
	}
	keepWhere(func(r bgp.Route) bool { return r.Path.LocalPref == maxLP })
	minLen := cur[0].Path.ASPathLen
	for _, r := range cur {
		if r.Path.ASPathLen < minLen {
			minLen = r.Path.ASPathLen
		}
	}
	keepWhere(func(r bgp.Route) bool { return r.Path.ASPathLen == minLen })
	if opts.MED == AlwaysCompare {
		minMED := cur[0].Path.MED
		for _, r := range cur {
			if r.Path.MED < minMED {
				minMED = r.Path.MED
			}
		}
		keepWhere(func(r bgp.Route) bool { return r.Path.MED == minMED })
	} else {
		minByAS := map[bgp.ASN]int{}
		for _, r := range cur {
			if m, ok := minByAS[r.Path.NextAS]; !ok || r.Path.MED < m {
				minByAS[r.Path.NextAS] = r.Path.MED
			}
		}
		keepWhere(func(r bgp.Route) bool { return r.Path.MED == minByAS[r.Path.NextAS] })
	}
	ebgp := func() {
		any := false
		for _, r := range cur {
			if r.EBGP() {
				any = true
			}
		}
		if any {
			keepWhere(func(r bgp.Route) bool { return r.EBGP() })
		}
	}
	metric := func() {
		min := cur[0].Metric
		for _, r := range cur {
			if r.Metric < min {
				min = r.Metric
			}
		}
		keepWhere(func(r bgp.Route) bool { return r.Metric == min })
	}
	if opts.Order == RFCOrder {
		metric()
		ebgp()
	} else {
		ebgp()
		metric()
	}
	win := cur[0]
	for _, r := range cur[1:] {
		if r.LearnedFrom < win.LearnedFrom ||
			(r.LearnedFrom == win.LearnedFrom && r.Path.ID < win.Path.ID) {
			win = r
		}
	}
	return win, true
}

// TestQuickBestMatchesReference differential-tests the optimised in-place
// Best against the naive transcription, including inputs larger than the
// 16-route fast path so the map-based MED branch is exercised.
func TestQuickBestMatchesReference(t *testing.T) {
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(30)
		rs := randomRoutes(rng, n)
		for _, opts := range []Options{{}, {Order: RFCOrder}, {MED: AlwaysCompare}, {Order: RFCOrder, MED: AlwaysCompare}} {
			got, ok1 := Best(rs, opts)
			want, ok2 := referenceBest(rs, opts)
			if ok1 != ok2 || got.Path.ID != want.Path.ID {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// TestBestDoesNotMutateInput: the in-place filters operate on a private
// copy; the caller's slice must come back untouched.
func TestBestDoesNotMutateInput(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	rs := randomRoutes(rng, 12)
	orig := append([]bgp.Route(nil), rs...)
	Best(rs, Options{})
	Best(rs, Options{Order: RFCOrder, MED: AlwaysCompare})
	for i := range rs {
		if rs[i] != orig[i] {
			t.Fatalf("Best mutated its input at %d", i)
		}
	}
}

// TestMEDSelectionNotRankable machine-checks the Section 4 remark that
// SPVP-style models (a fixed per-router preference order) cannot express
// MED: the choice function violates independence of irrelevant
// alternatives. At Figure 1(a)'s reflector A, the winner among {r1, r2}
// is r2, yet adding r3 makes r1 win — even though r3 itself loses. No
// fixed ranking of {r1, r2, r3} can produce both choices.
func TestMEDSelectionNotRankable(t *testing.T) {
	// Routes as seen from A in Figure 1(a): metrics 5, 4, 11; r2 and r3
	// share AS 1 with MEDs 1 and 0.
	r1 := mk(0, 100, 1, 2, 0, 5, false, 1)
	r2 := mk(1, 100, 1, 1, 1, 4, false, 2)
	r3 := mk(2, 100, 1, 1, 0, 11, false, 3)

	small, _ := Best([]bgp.Route{r1, r2}, Options{})
	if small.Path.ID != r2.Path.ID {
		t.Fatalf("Best({r1,r2}) = p%d, want r2", small.Path.ID)
	}
	big, _ := Best([]bgp.Route{r1, r2, r3}, Options{})
	if big.Path.ID != r1.Path.ID {
		t.Fatalf("Best({r1,r2,r3}) = p%d, want r1", big.Path.ID)
	}
	// IIA violation: Best(S2) = r1 lies in S1 = {r1, r2} ⊂ S2, yet
	// Best(S1) = r2 ≠ r1. A fixed ranking would force Best(S1) = r1.
	if big.Path.ID == small.Path.ID {
		t.Fatal("expected an IIA violation; MED selection looked rankable")
	}
	// And indeed no strict order over three routes is consistent with
	// both observed choices plus Best({r2, r3}) — verify by brute force
	// over all 6 permutations.
	pair23, _ := Best([]bgp.Route{r2, r3}, Options{})
	choices := []struct {
		set  []bgp.Route
		best bgp.PathID
	}{
		{[]bgp.Route{r1, r2}, small.Path.ID},
		{[]bgp.Route{r2, r3}, pair23.Path.ID},
		{[]bgp.Route{r1, r2, r3}, big.Path.ID},
	}
	perms := [][3]bgp.PathID{
		{0, 1, 2}, {0, 2, 1}, {1, 0, 2}, {1, 2, 0}, {2, 0, 1}, {2, 1, 0},
	}
	for _, perm := range perms {
		rank := map[bgp.PathID]int{}
		for pos, id := range perm {
			rank[id] = pos
		}
		consistent := true
		for _, c := range choices {
			top := c.set[0].Path.ID
			for _, r := range c.set[1:] {
				if rank[r.Path.ID] < rank[top] {
					top = r.Path.ID
				}
			}
			if top != c.best {
				consistent = false
				break
			}
		}
		if consistent {
			t.Fatalf("ranking %v reproduces all MED choices; the §4 remark would be false", perm)
		}
	}
}

func TestStringers(t *testing.T) {
	if PaperOrder.String() != "paper" || RFCOrder.String() != "rfc" {
		t.Fatal("Order.String wrong")
	}
	if PerNeighborAS.String() != "per-neighbor-as" || AlwaysCompare.String() != "always-compare-med" {
		t.Fatal("MEDMode.String wrong")
	}
}
