// Package selection implements the BGP route selection procedures of the
// paper: the full six-rule Choose_best of Section 2/Figure 6, the truncated
// Choose^B of Section 6/Figure 10 (rules 1-3, the "MED survivors"), the
// alternative rule ordering of RFC 1771/[11] discussed around Figure 1(b),
// the always-compare-MED variant, and the per-neighbouring-AS computation
// used by the Walton et al. proposal (Section 8).
package selection

import (
	"sort"

	"repro/internal/bgp"
)

// Order selects how rules 4 and 5 interact (footnote 4 of the paper).
type Order int

const (
	// PaperOrder prefers E-BGP routes over I-BGP routes irrespective of the
	// IGP cost to the next hop (Cisco/Juniper behaviour; the paper's
	// default).
	PaperOrder Order = iota
	// RFCOrder picks the minimum IGP cost route first, then prefers E-BGP
	// among cost ties (the RFC 1771 reading; Figure 1(b) diverges under
	// this ordering).
	RFCOrder
)

func (o Order) String() string {
	if o == RFCOrder {
		return "rfc"
	}
	return "paper"
}

// MEDMode selects how rule 3 compares MED values.
type MEDMode int

const (
	// PerNeighborAS compares MEDs only between routes through the same
	// neighbouring AS (standard behaviour; the source of the oscillations).
	PerNeighborAS MEDMode = iota
	// AlwaysCompare compares MEDs across all routes regardless of the
	// neighbouring AS (the Cisco "always-compare-med" mitigation mentioned
	// in Section 1).
	AlwaysCompare
)

func (m MEDMode) String() string {
	if m == AlwaysCompare {
		return "always-compare-med"
	}
	return "per-neighbor-as"
}

// Options bundles the selection knobs.
type Options struct {
	Order Order
	MED   MEDMode
}

// filterMaxLocalPref keeps the routes with the highest LOCAL-PREF (rule 1).
func filterMaxLocalPref(rs []bgp.Route) []bgp.Route {
	best := rs[0].Path.LocalPref
	for _, r := range rs[1:] {
		if r.Path.LocalPref > best {
			best = r.Path.LocalPref
		}
	}
	// Skip the already-in-place matching prefix before compacting: when
	// every route survives (the common case on this rule) no Route values
	// are copied at all.
	n := 0
	for n < len(rs) && rs[n].Path.LocalPref == best {
		n++
	}
	if n == len(rs) {
		return rs
	}
	out := rs[:n]
	for _, r := range rs[n+1:] {
		if r.Path.LocalPref == best {
			out = append(out, r)
		}
	}
	return out
}

// filterMinASPathLen keeps the routes with the shortest AS-PATH (rule 2).
func filterMinASPathLen(rs []bgp.Route) []bgp.Route {
	best := rs[0].Path.ASPathLen
	for _, r := range rs[1:] {
		if r.Path.ASPathLen < best {
			best = r.Path.ASPathLen
		}
	}
	n := 0
	for n < len(rs) && rs[n].Path.ASPathLen == best {
		n++
	}
	if n == len(rs) {
		return rs
	}
	out := rs[:n]
	for _, r := range rs[n+1:] {
		if r.Path.ASPathLen == best {
			out = append(out, r)
		}
	}
	return out
}

// filterMED applies rule 3: for each neighbouring AS, keep only the routes
// with the minimum MED among routes through that AS. Under AlwaysCompare
// the minimum is taken over all routes. Small inputs use a quadratic scan
// to stay allocation-free.
func filterMED(rs []bgp.Route, mode MEDMode) []bgp.Route {
	if mode == AlwaysCompare {
		best := rs[0].Path.MED
		for _, r := range rs[1:] {
			if r.Path.MED < best {
				best = r.Path.MED
			}
		}
		n := 0
		for n < len(rs) && rs[n].Path.MED == best {
			n++
		}
		if n == len(rs) {
			return rs
		}
		out := rs[:n]
		for _, r := range rs[n+1:] {
			if r.Path.MED == best {
				out = append(out, r)
			}
		}
		return out
	}
	if len(rs) <= 16 {
		var keep [16]bool
		for i, r := range rs {
			keep[i] = true
			for j, o := range rs {
				if i != j && o.Path.NextAS == r.Path.NextAS && o.Path.MED < r.Path.MED {
					keep[i] = false
					break
				}
			}
		}
		n := 0
		for n < len(rs) && keep[n] {
			n++
		}
		if n == len(rs) {
			return rs
		}
		out := rs[:n]
		for i := n + 1; i < len(rs); i++ {
			if keep[i] {
				out = append(out, rs[i])
			}
		}
		return out
	}
	minByAS := make(map[bgp.ASN]int, 4)
	for _, r := range rs {
		cur, ok := minByAS[r.Path.NextAS]
		if !ok || r.Path.MED < cur {
			minByAS[r.Path.NextAS] = r.Path.MED
		}
	}
	n := 0
	for n < len(rs) && rs[n].Path.MED == minByAS[rs[n].Path.NextAS] {
		n++
	}
	if n == len(rs) {
		return rs
	}
	out := rs[:n]
	for _, r := range rs[n+1:] {
		if r.Path.MED == minByAS[r.Path.NextAS] {
			out = append(out, r)
		}
	}
	return out
}

// filterMetric keeps the routes with the minimum metric (IGP cost to the
// next hop plus exit cost).
func filterMetric(rs []bgp.Route) []bgp.Route {
	best := rs[0].Metric
	for _, r := range rs[1:] {
		if r.Metric < best {
			best = r.Metric
		}
	}
	n := 0
	for n < len(rs) && rs[n].Metric == best {
		n++
	}
	if n == len(rs) {
		return rs
	}
	out := rs[:n]
	for _, r := range rs[n+1:] {
		if r.Metric == best {
			out = append(out, r)
		}
	}
	return out
}

// filterEBGP keeps only E-BGP routes; if there are none it returns the
// input unchanged.
func filterEBGP(rs []bgp.Route) []bgp.Route {
	any := false
	for _, r := range rs {
		if r.EBGP() {
			any = true
			break
		}
	}
	if !any {
		return rs
	}
	n := 0
	for n < len(rs) && rs[n].EBGP() {
		n++
	}
	if n == len(rs) {
		return rs
	}
	out := rs[:n]
	for _, r := range rs[n+1:] {
		if r.EBGP() {
			out = append(out, r)
		}
	}
	return out
}

// Best runs the full route selection procedure over the candidate routes of
// one router and returns the winner. ok is false when cands is empty.
//
// Rules, in the paper's order: (1) highest LOCAL-PREF; (2) shortest
// AS-PATH; (3) per-neighbouring-AS minimum MED; (4)/(5) prefer E-BGP routes
// and take the minimum metric (PaperOrder) or take the minimum metric and
// prefer E-BGP among ties (RFCOrder); (6) lowest learnedFrom identifier.
// Any remaining tie breaks on PathID for determinism.
func Best(cands []bgp.Route, opts Options) (bgp.Route, bool) {
	if len(cands) == 0 {
		return bgp.Route{}, false
	}
	// One defensive copy; BestInPlace compacts it.
	rs := make([]bgp.Route, len(cands))
	copy(rs, cands)
	return BestInPlace(rs, opts)
}

// BestInPlace is Best without the defensive copy: the filters reorder and
// truncate rs. Callers that feed a reusable scratch slice (the engine's
// per-activation hot path) avoid Best's per-call allocation.
func BestInPlace(rs []bgp.Route, opts Options) (bgp.Route, bool) {
	if len(rs) == 0 {
		return bgp.Route{}, false
	}
	rs = filterMaxLocalPref(rs)
	rs = filterMinASPathLen(rs)
	rs = filterMED(rs, opts.MED)
	switch opts.Order {
	case RFCOrder:
		rs = filterMetric(rs)
		rs = filterEBGP(rs)
	default:
		rs = filterEBGP(rs)
		rs = filterMetric(rs)
	}
	win := rs[0]
	for _, r := range rs[1:] {
		if r.LearnedFrom < win.LearnedFrom ||
			(r.LearnedFrom == win.LearnedFrom && r.Path.ID < win.Path.ID) {
			win = r
		}
	}
	return win, true
}

// Survivors12 applies rules 1 and 2 of the selection procedure to exit
// paths: the routes with maximal LOCAL-PREF and, among those, minimal
// AS-PATH length. Both rules read only injection-time attributes, so the
// result is router-independent — it is the candidate set within which MED
// comparison (rule 3) and IGP metrics (rule 5) decide, and therefore the
// set the static oscillation-risk passes of package lint reason about.
// The returned slice is freshly allocated.
func Survivors12(paths []bgp.ExitPath) []bgp.ExitPath {
	if len(paths) == 0 {
		return nil
	}
	// Rule 1.
	bestLP := paths[0].LocalPref
	for _, p := range paths[1:] {
		if p.LocalPref > bestLP {
			bestLP = p.LocalPref
		}
	}
	step1 := make([]bgp.ExitPath, 0, len(paths))
	for _, p := range paths {
		if p.LocalPref == bestLP {
			step1 = append(step1, p)
		}
	}
	// Rule 2.
	bestLen := step1[0].ASPathLen
	for _, p := range step1[1:] {
		if p.ASPathLen < bestLen {
			bestLen = p.ASPathLen
		}
	}
	step2 := step1[:0]
	for _, p := range step1 {
		if p.ASPathLen == bestLen {
			step2 = append(step2, p)
		}
	}
	return step2
}

// SurvivorsB runs Choose^B (Figure 10): the prefix of the selection
// procedure through the MED rule, applied to exit paths. These are the
// routes the modified protocol advertises. The result is sorted by PathID.
//
// Rules 1-3 read only injection-time attributes (LOCAL-PREF, AS-PATH
// length, NextAS, MED), so Choose^B is well-defined on exit paths without
// reference to a particular router.
func SurvivorsB(paths []bgp.ExitPath, mode MEDMode) []bgp.ExitPath {
	if len(paths) == 0 {
		return nil
	}
	step2 := Survivors12(paths)
	// Rule 3.
	var out []bgp.ExitPath
	if mode == AlwaysCompare {
		bestMED := step2[0].MED
		for _, p := range step2[1:] {
			if p.MED < bestMED {
				bestMED = p.MED
			}
		}
		for _, p := range step2 {
			if p.MED == bestMED {
				out = append(out, p)
			}
		}
	} else {
		minByAS := make(map[bgp.ASN]int, 4)
		for _, p := range step2 {
			cur, ok := minByAS[p.NextAS]
			if !ok || p.MED < cur {
				minByAS[p.NextAS] = p.MED
			}
		}
		for _, p := range step2 {
			if p.MED == minByAS[p.NextAS] {
				out = append(out, p)
			}
		}
	}
	return bgp.SortPaths(out)
}

// SurvivorsBInPlace is Choose^B without SurvivorsB's fresh allocations:
// it compacts paths in place (reordering and truncating the slice) and
// returns the surviving prefix, UNSORTED — callers feeding a PathSet do not
// need SurvivorsB's by-ID order. byAS is a caller-owned scratch map for the
// per-neighbour-AS MED minima, cleared on entry; it may be nil under
// AlwaysCompare, which never consults it.
func SurvivorsBInPlace(paths []bgp.ExitPath, mode MEDMode, byAS map[bgp.ASN]int) []bgp.ExitPath {
	if len(paths) == 0 {
		return nil
	}
	// Rule 1.
	bestLP := paths[0].LocalPref
	for _, p := range paths[1:] {
		if p.LocalPref > bestLP {
			bestLP = p.LocalPref
		}
	}
	// Compactions skip the already-in-place matching prefix, same as the
	// Route filters above: the common all-survive case copies nothing.
	n := 0
	for n < len(paths) && paths[n].LocalPref == bestLP {
		n++
	}
	step := paths
	if n < len(paths) {
		step = paths[:n]
		for _, p := range paths[n+1:] {
			if p.LocalPref == bestLP {
				step = append(step, p)
			}
		}
	}
	// Rule 2.
	bestLen := step[0].ASPathLen
	for _, p := range step[1:] {
		if p.ASPathLen < bestLen {
			bestLen = p.ASPathLen
		}
	}
	n = 0
	for n < len(step) && step[n].ASPathLen == bestLen {
		n++
	}
	if n < len(step) {
		out := step[:n]
		for _, p := range step[n+1:] {
			if p.ASPathLen == bestLen {
				out = append(out, p)
			}
		}
		step = out
	}
	// Rule 3.
	if mode == AlwaysCompare {
		bestMED := step[0].MED
		for _, p := range step[1:] {
			if p.MED < bestMED {
				bestMED = p.MED
			}
		}
		n = 0
		for n < len(step) && step[n].MED == bestMED {
			n++
		}
		if n == len(step) {
			return step
		}
		out := step[:n]
		for _, p := range step[n+1:] {
			if p.MED == bestMED {
				out = append(out, p)
			}
		}
		return out
	}
	clear(byAS)
	for _, p := range step {
		cur, ok := byAS[p.NextAS]
		if !ok || p.MED < cur {
			byAS[p.NextAS] = p.MED
		}
	}
	n = 0
	for n < len(step) && step[n].MED == byAS[step[n].NextAS] {
		n++
	}
	if n == len(step) {
		return step
	}
	out := step[:n]
	for _, p := range step[n+1:] {
		if p.MED == byAS[p.NextAS] {
			out = append(out, p)
		}
	}
	return out
}

// BestPerAS returns, for each neighbouring AS present among the candidates,
// the route the full selection procedure would pick if only routes through
// that AS existed. The result is ordered by AS number. This is the
// computation underlying the Walton et al. advertisement rule.
func BestPerAS(cands []bgp.Route, opts Options) []bgp.Route {
	// Collect the AS list while grouping rather than ranging over the map
	// afterwards: map iteration order is nondeterministic, and this
	// function feeds the advertisement sets whose determinism Lemma 7.4
	// relies on.
	byAS := make(map[bgp.ASN][]bgp.Route)
	asns := make([]bgp.ASN, 0, 4)
	for _, r := range cands {
		if _, ok := byAS[r.Path.NextAS]; !ok {
			asns = append(asns, r.Path.NextAS)
		}
		byAS[r.Path.NextAS] = append(byAS[r.Path.NextAS], r)
	}
	sort.Slice(asns, func(i, j int) bool { return asns[i] < asns[j] })
	out := make([]bgp.Route, 0, len(asns))
	for _, a := range asns {
		if w, ok := Best(byAS[a], opts); ok {
			out = append(out, w)
		}
	}
	return out
}

// WaltonSet returns the routes a Walton et al. route reflector announces:
// its best route through each neighbouring AS, kept only when that route
// has the same LOCAL-PREF and AS-PATH length as the overall best route
// (Section 8, "Brief Overview of the Walton et al. Solution").
func WaltonSet(cands []bgp.Route, opts Options) []bgp.Route {
	overall, ok := Best(cands, opts)
	if !ok {
		return nil
	}
	per := BestPerAS(cands, opts)
	out := per[:0]
	for _, r := range per {
		if r.Path.LocalPref == overall.Path.LocalPref && r.Path.ASPathLen == overall.Path.ASPathLen {
			out = append(out, r)
		}
	}
	return out
}
