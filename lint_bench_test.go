package ibgp

// BenchmarkLintScale measures static analysis at ISP scale: heuristic
// lint and the full SAT-backed prover over the ~1000-router topogen
// default family, recorded in BENCH_lint.json so the perf trajectory
// accumulates across commits. The prover must stay interactive (well
// under ten seconds) at this scale — that bound is the point of the
// benchmark, so it is asserted, not just reported.

import (
	"encoding/json"
	"os"
	"testing"
	"time"

	"repro/internal/lint"
	"repro/internal/topogen"
	"repro/internal/topology"
)

func BenchmarkLintScale(b *testing.B) {
	tspec := topogen.Default()
	spec, err := topogen.Generate(tspec, 1)
	if err != nil {
		b.Fatal(err)
	}
	sys, err := topology.BuildSpec(spec)
	if err != nil {
		b.Fatal(err)
	}

	var heuristic, prove time.Duration
	var verdict lint.Verdict
	for i := 0; i < b.N; i++ {
		begin := time.Now()
		lint.LintSystem("bench", sys)
		heuristic = time.Since(begin)

		begin = time.Now()
		r := lint.ProveSystem("bench", sys)
		prove = time.Since(begin)
		verdict = r.Verdict
	}
	b.ReportMetric(prove.Seconds(), "prove-sec")
	if limit := 10 * time.Second; prove > limit {
		b.Fatalf("proving a %d-router topology took %v (limit %v)", tspec.N(), prove, limit)
	}

	record := struct {
		Job          string   `json:"job"`
		Routers      int      `json:"routers"`
		HeuristicSec float64  `json:"heuristic_sec"`
		ProveSec     float64  `json:"prove_sec"`
		Verdict      string   `json:"verdict"`
		Under10s     bool     `json:"prove_under_10s"`
		Env          benchEnv `json:"env"`
	}{
		Job:          "lint/topogen-default",
		Routers:      tspec.N(),
		HeuristicSec: heuristic.Seconds(),
		ProveSec:     prove.Seconds(),
		Verdict:      verdict.String(),
		Under10s:     prove <= 10*time.Second,
		Env:          hostEnv(),
	}
	out, err := json.MarshalIndent(record, "", "  ")
	if err != nil {
		b.Fatal(err)
	}
	if err := os.WriteFile("BENCH_lint.json", append(out, '\n'), 0o644); err != nil {
		b.Fatal(err)
	}
}
