package ibgp

import (
	"io"

	"repro/internal/confed"
)

// Confederation substrate (package confed): the other full-mesh
// alternative the paper discusses, with the same MED oscillation and — as
// an extension — the same survivor-advertisement cure.
type (
	// Confederation is an AS partitioned into member sub-ASes.
	Confederation = confed.System
	// ConfedBuilder assembles a Confederation.
	ConfedBuilder = confed.Builder
	// ConfedEngine runs the activation model over a Confederation.
	ConfedEngine = confed.Engine
	// ConfedPolicy selects classic vs survivor advertisement.
	ConfedPolicy = confed.Policy
	// ConfedResult reports a confederation run.
	ConfedResult = confed.Result
)

// Confederation policies.
const (
	// ConfedClassic announces only the best route across borders.
	ConfedClassic = confed.Classic
	// ConfedSurvivors announces every MED survivor (the paper's fix
	// transplanted to confederations).
	ConfedSurvivors = confed.Survivors
)

// NewConfedBuilder returns an empty confederation builder.
func NewConfedBuilder() *ConfedBuilder { return confed.NewBuilder() }

// NewConfedEngine returns a confed engine in the cold-start configuration.
func NewConfedEngine(sys *Confederation, policy ConfedPolicy, opts Options) *ConfedEngine {
	return confed.New(sys, policy, opts)
}

// RunConfed drives a confederation engine under a schedule.
func RunConfed(e *ConfedEngine, sch Schedule, maxSteps int) ConfedResult {
	return confed.Run(e, sch, maxSteps)
}

// SaveConfederation writes a Confederation as indented JSON.
func SaveConfederation(w io.Writer, sys *Confederation) error { return confed.Save(w, sys) }

// LoadConfederation reads a Confederation from its JSON form.
func LoadConfederation(r io.Reader) (*Confederation, error) { return confed.Load(r) }
