package ibgp

// BenchmarkSoak pins the churn soak harness: sustained message throughput
// and post-burst convergence latency on the simulator substrate, driven
// over a mid-size generated ISP topology with every rolling invariant
// check live. Results go to BENCH_soak.json so the soak trajectory
// accumulates across commits next to BENCH_router.json.

import (
	"testing"

	"repro/internal/churn"
	"repro/internal/protocol"
	"repro/internal/topogen"
	"repro/internal/topology"
)

func BenchmarkSoak(b *testing.B) {
	spec := topogen.Default()
	spec.ClientsPerPoP = 5 // mid-size slice of the default family
	tsp, err := topogen.Generate(spec, 1)
	if err != nil {
		b.Fatal(err)
	}
	sys, err := topology.BuildSpec(tsp)
	if err != nil {
		b.Fatal(err)
	}
	cfg := churn.Config{
		Spec:   churn.DefaultSpec(),
		Rounds: 8,
		Policy: protocol.Modified,
		MRAI:   10,
	}

	var rep *churn.Report
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rep, err = churn.SoakSim(sys, cfg)
		if err != nil {
			b.Fatal(err)
		}
		if !rep.OK() {
			b.Fatalf("soak violations: %+v", rep.Violations)
		}
	}
	b.StopTimer()

	b.ReportMetric(rep.Measured.MsgsPerSec, "msgs/sec")
	b.ReportMetric(float64(rep.Measured.Convergence.P99), "p99-converge")

	record := struct {
		Job         string             `json:"job"`
		Routers     int                `json:"routers"`
		Spec        string             `json:"spec"`
		Rounds      int                `json:"rounds"`
		Events      int                `json:"events"`
		Messages    int64              `json:"messages"`
		MsgsPerSec  float64            `json:"msgs_per_sec"`
		Convergence churn.LatencyStats `json:"convergence"`
		StateHash   string             `json:"state_hash"`
		Env         benchEnv           `json:"env"`
	}{
		Job:         "soak-sim/topogen-default-5clients-seed1",
		Routers:     sys.N(),
		Spec:        cfg.Spec.String(),
		Rounds:      cfg.Rounds,
		Events:      rep.Agg.Events,
		Messages:    rep.Measured.Counters.Sent,
		MsgsPerSec:  rep.Measured.MsgsPerSec,
		Convergence: rep.Measured.Convergence,
		StateHash:   rep.Agg.StateHash,
		Env:         hostEnv(),
	}
	writeBenchJSON(b, "BENCH_soak.json", record)
}
