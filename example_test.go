package ibgp_test

import (
	"fmt"

	ibgp "repro"
)

// The headline result on Figure 1(a): classic I-BGP provably oscillates,
// the paper's modified protocol converges.
func ExampleNewEngine() {
	fig := ibgp.Fig1a()

	classic := ibgp.NewEngine(fig.Sys, ibgp.Classic, ibgp.Options{})
	res := ibgp.Run(classic, ibgp.RoundRobin(fig.Sys.N()), ibgp.RunOptions{})
	fmt.Println("classic: ", res.Outcome)

	modified := ibgp.NewEngine(fig.Sys, ibgp.Modified, ibgp.Options{})
	res = ibgp.Run(modified, ibgp.RoundRobin(fig.Sys.N()), ibgp.RunOptions{})
	fmt.Println("modified:", res.Outcome)
	// Output:
	// classic:  cycled
	// modified: converged
}

// Figure 2 has exactly two stable solutions under classic I-BGP — which
// one the AS lands on depends on timing.
func ExampleStableSolutions() {
	sols := ibgp.StableSolutions(ibgp.Fig2().Sys, ibgp.Options{})
	fmt.Println(len(sols), "stable solutions")
	// Output:
	// 2 stable solutions
}

// Analyze decides the paper's STABLE I-BGP WITH ROUTE REFLECTION question
// exhaustively for small systems.
func ExampleAnalyze() {
	a := ibgp.Analyze(ibgp.Fig1a().Sys, ibgp.Classic, ibgp.Options{}, true)
	fmt.Println("stabilizable:", a.Stabilizable())
	// Output:
	// stabilizable: false
}

// The Theorem 5.1 reduction: a satisfiable formula yields a stable
// routing; decoding the routing recovers a satisfying assignment.
func ExampleReduceSAT() {
	f := &ibgp.Formula{NumVars: 2, Clauses: []ibgp.SATClause{{1, 2}, {-1, 2}}}
	red, err := ibgp.ReduceSAT(f)
	if err != nil {
		panic(err)
	}
	assign, _ := ibgp.SolveSAT(f)
	eng, res := red.StabilizeWithAssignment(assign, 20000)
	fmt.Println("outcome:", res.Outcome, "stable:", eng.Stable())
	decoded, _ := red.AssignmentFromSnapshot(res.Final)
	fmt.Println("decoded satisfies formula:", f.Eval(decoded))
	// Output:
	// outcome: converged stable: true
	// decoded satisfies formula: true
}

// The message-level simulator with scripted delays: Figure 2's outcome is
// decided purely by which cluster's announcement travels faster.
func ExampleNewSim() {
	fig := ibgp.Fig2()
	slowC2 := func(from, to ibgp.NodeID, seq int) int64 {
		if from == fig.Node("c2") {
			return 100
		}
		return 1
	}
	sim := ibgp.NewSim(fig.Sys, ibgp.Classic, ibgp.Options{}, slowC2)
	sim.InjectAll()
	res := sim.Run(0)
	fmt.Println("quiesced:", res.Quiesced)
	fmt.Println("RR1 best:", res.Best[fig.Node("RR1")]) // r1 has PathID 0
	// Output:
	// quiesced: true
	// RR1 best: 0
}

// Figure 14: classic I-BGP converges into a forwarding loop between the
// two clients; the modified protocol is loop-free.
func ExampleNewForwardingPlane() {
	fig := ibgp.Fig14()
	for _, policy := range []ibgp.Policy{ibgp.Classic, ibgp.Modified} {
		eng := ibgp.NewEngine(fig.Sys, policy, ibgp.Options{})
		res := ibgp.Run(eng, ibgp.RoundRobin(fig.Sys.N()), ibgp.RunOptions{})
		plane := ibgp.NewForwardingPlane(fig.Sys, res.Final)
		fmt.Printf("%v loop-free: %v\n", policy, plane.LoopFree())
	}
	// Output:
	// classic loop-free: false
	// modified loop-free: true
}

// The confederation substrate: the same oscillation, the same cure.
func ExampleNewConfedEngine() {
	b := ibgp.NewConfedBuilder()
	X := b.NewSubAS()
	Y := b.NewSubAS()
	A1 := b.Router("A1", X)
	a1 := b.Router("a1", X)
	a2 := b.Router("a2", X)
	B1 := b.Router("B1", Y)
	b1 := b.Router("b1", Y)
	b.Link(A1, a1, 5).Link(A1, a2, 4).Link(a1, a2, 8).Link(A1, B1, 1).Link(B1, b1, 10)
	b.ConfedSession(A1, B1)
	b.Exit(a1, 0, 1, 2, 0, 0)
	b.Exit(a2, 0, 1, 1, 1, 0)
	b.Exit(b1, 0, 1, 1, 0, 0)
	sys, err := b.Build()
	if err != nil {
		panic(err)
	}
	for _, policy := range []ibgp.ConfedPolicy{ibgp.ConfedClassic, ibgp.ConfedSurvivors} {
		res := ibgp.RunConfed(ibgp.NewConfedEngine(sys, policy, ibgp.Options{}),
			ibgp.RoundRobin(sys.N()), 5000)
		fmt.Printf("%v: %v\n", policy, res.Outcome)
	}
	// Output:
	// classic: cycled
	// survivors: converged
}
