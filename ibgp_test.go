package ibgp

import (
	"bytes"
	"strings"
	"testing"
	"time"
)

// TestQuickstartFlow exercises the README's quickstart end to end through
// the public API only.
func TestQuickstartFlow(t *testing.T) {
	b := NewBuilder()
	k0 := b.NewCluster()
	k1 := b.NewCluster()
	rr1 := b.Reflector("rr1", k0)
	c1 := b.Client("c1", k0)
	rr2 := b.Reflector("rr2", k1)
	b.Link(rr1, c1, 5).Link(rr1, rr2, 1)
	p1 := b.Exit(c1, ExitSpec{NextAS: 1, MED: 0})
	p2 := b.Exit(rr2, ExitSpec{NextAS: 2, MED: 0})
	sys, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	eng := NewEngine(sys, Modified, Options{})
	res := Run(eng, RoundRobin(sys.N()), RunOptions{})
	if res.Outcome != Converged {
		t.Fatalf("outcome = %v", res.Outcome)
	}
	// rr1 prefers p2 on metric (1 < 5); c1 keeps its own E-BGP route.
	if res.Final.Best[rr1] != p2 || res.Final.Best[rr2] != p2 || res.Final.Best[c1] != p1 {
		t.Fatalf("routes = %v", res.Final)
	}
	plane := NewForwardingPlane(sys, res.Final)
	if !plane.LoopFree() {
		t.Fatal("loops in trivial system")
	}
}

func TestFacadeFigures(t *testing.T) {
	for name, fig := range map[string]*Fig{
		"1a": Fig1a(), "1b": Fig1b(), "2": Fig2(), "3": Fig3(),
		"12": Fig12(), "13": Fig13(), "14": Fig14(),
	} {
		if fig.Sys == nil || fig.Sys.N() == 0 {
			t.Fatalf("figure %s empty", name)
		}
		eng := NewEngine(fig.Sys, Modified, Options{})
		if res := Run(eng, RoundRobin(fig.Sys.N()), RunOptions{MaxSteps: 8000}); res.Outcome != Converged {
			t.Fatalf("figure %s: modified protocol outcome %v", name, res.Outcome)
		}
	}
}

func TestFacadeAnalyze(t *testing.T) {
	a := Analyze(Fig1a().Sys, Classic, Options{}, true)
	if a.Truncated || a.Stabilizable() {
		t.Fatalf("Fig1a analysis: %+v", a)
	}
	sols := StableSolutions(Fig2().Sys, Options{})
	if len(sols) != 2 {
		t.Fatalf("Fig2 stable solutions = %d", len(sols))
	}
}

func TestFacadeSchedules(t *testing.T) {
	for _, sch := range []Schedule{
		RoundRobin(3), AllAtOnce(3), PermutationRounds(3, 1), SubsetRounds(3, 1),
		FixedSchedule([]NodeID{0}, []NodeID{1, 2}),
	} {
		if got := sch.Next(); len(got) == 0 {
			t.Fatal("empty activation set")
		}
	}
}

func TestFacadeSim(t *testing.T) {
	fig := Fig14()
	s := NewSim(fig.Sys, Modified, Options{}, MustRandomDelay(1, 1, 9))
	s.InjectAll()
	res := s.Run(0)
	if !res.Quiesced {
		t.Fatalf("sim did not quiesce: %+v", res)
	}
	if res.Best[fig.Node("c1")] != fig.Path("r2") {
		t.Fatalf("c1 best = p%d", res.Best[fig.Node("c1")])
	}
	_ = ConstantDelay(1)
}

func TestFacadeTCP(t *testing.T) {
	fig := Fig14()
	n := NewTCPNetwork(fig.Sys, Modified, Options{})
	if err := n.Start(); err != nil {
		t.Fatal(err)
	}
	defer n.Stop()
	n.InjectAll()
	if !n.WaitQuiesce(10*time.Second, 150*time.Millisecond) {
		t.Fatal("TCP network did not quiesce")
	}
	if n.Best(fig.Node("c2")) != fig.Path("r1") {
		t.Fatalf("c2 best = p%d", n.Best(fig.Node("c2")))
	}
}

func TestFacadeSAT(t *testing.T) {
	f, err := ParseDIMACS(strings.NewReader("p cnf 2 2\n1 2 0\n-1 2 0\n"))
	if err != nil {
		t.Fatal(err)
	}
	assign, ok := SolveSAT(f)
	if !ok || !f.Eval(assign) {
		t.Fatal("solver failed")
	}
	var buf bytes.Buffer
	if err := WriteDIMACS(&buf, f); err != nil {
		t.Fatal(err)
	}
	red, err := ReduceSAT(f)
	if err != nil {
		t.Fatal(err)
	}
	eng, res := red.StabilizeWithAssignment(assign, 20000)
	if res.Outcome != Converged || !eng.Stable() {
		t.Fatalf("reduction did not stabilise: %v", res.Outcome)
	}
	if g := Random3SAT(4, 5, 9); g.NumVars != 4 || len(g.Clauses) != 5 {
		t.Fatal("Random3SAT shape")
	}
}

func TestFacadeSystemJSONRoundTrip(t *testing.T) {
	fig := Fig1a()
	var buf bytes.Buffer
	if err := SaveSystem(&buf, fig.Sys); err != nil {
		t.Fatal(err)
	}
	sys, err := LoadSystem(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if sys.N() != fig.Sys.N() || sys.NumExits() != fig.Sys.NumExits() {
		t.Fatal("JSON round trip changed the system")
	}
	// The reloaded system behaves identically.
	a := Run(NewEngine(fig.Sys, Classic, Options{}), RoundRobin(fig.Sys.N()), RunOptions{MaxSteps: 2000})
	b := Run(NewEngine(sys, Classic, Options{}), RoundRobin(sys.N()), RunOptions{MaxSteps: 2000})
	if a.Outcome != b.Outcome {
		t.Fatalf("outcomes differ: %v vs %v", a.Outcome, b.Outcome)
	}
}

func TestFacadeConfedJSON(t *testing.T) {
	b := NewConfedBuilder()
	X := b.NewSubAS()
	Y := b.NewSubAS()
	u := b.Router("u", X)
	v := b.Router("v", Y)
	b.Link(u, v, 1)
	b.ConfedSession(u, v)
	b.Exit(u, 0, 1, 1, 0, 0)
	sys, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := SaveConfederation(&buf, sys); err != nil {
		t.Fatal(err)
	}
	sys2, err := LoadConfederation(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if sys2.N() != 2 || sys2.NumSubAS() != 2 {
		t.Fatal("confed JSON round trip changed the system")
	}
}

func TestFacadeTraceHelpers(t *testing.T) {
	fig := Fig14()
	eng := NewEngine(fig.Sys, Modified, Options{})
	rec := NewTraceRecorder(fig.Sys, 0)
	eng.Observe(rec.Hook())
	res := Run(eng, RoundRobin(fig.Sys.N()), RunOptions{})
	if res.Outcome != Converged || rec.Len() == 0 {
		t.Fatalf("trace recorder saw nothing (outcome %v)", res.Outcome)
	}
	if s := Summary(fig.Sys, res.Final); !strings.Contains(s, "best") {
		t.Fatalf("summary = %q", s)
	}
}
