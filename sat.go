package ibgp

import (
	"io"

	"repro/internal/sat"
)

// SAT substrate (package sat): the 3-SAT machinery behind the Section 5
// NP-completeness proof.
type (
	// Formula is a CNF formula.
	Formula = sat.Formula
	// SATClause is one disjunction of literals.
	SATClause = sat.Clause
	// Literal is a signed variable reference (+v / -v).
	Literal = sat.Literal
	// Reduction is the I-BGP instance encoding a formula.
	Reduction = sat.Reduction
)

// ParseDIMACS reads a CNF formula in DIMACS format.
func ParseDIMACS(r io.Reader) (*Formula, error) { return sat.ParseDIMACS(r) }

// WriteDIMACS writes a formula in DIMACS format.
func WriteDIMACS(w io.Writer, f *Formula) error { return sat.WriteDIMACS(w, f) }

// SolveSAT decides satisfiability with DPLL and returns a satisfying
// assignment (index 0 unused) when one exists.
func SolveSAT(f *Formula) ([]bool, bool) { return sat.Solve(f) }

// Random3SAT generates a random formula with n variables and m
// three-literal clauses.
func Random3SAT(n, m int, seed int64) *Formula { return sat.Random3SAT(n, m, seed) }

// ReduceSAT builds the STABLE I-BGP WITH ROUTE REFLECTION instance for a
// formula: the instance has a stable solution under classic I-BGP exactly
// when the formula is satisfiable (Theorem 5.1).
func ReduceSAT(f *Formula) (*Reduction, error) { return sat.Reduce(f) }
