package ibgp

// BenchmarkRouterRefresh pins the shared operational router core: heap
// allocations per refresh (the recompute + per-peer diff/coalesce path
// both substrates run on every event) and sustained UPDATE throughput,
// bare-core and through the full msgsim pipeline with its per-hop wire
// encode/decode round trip. Results go to BENCH_router.json so the perf
// trajectory accumulates across commits.

import (
	"testing"
	"time"

	"repro/internal/bgp"
	"repro/internal/msgsim"
	"repro/internal/protocol"
	"repro/internal/router"
	"repro/internal/selection"
	"repro/internal/wire"
)

func BenchmarkRouterRefresh(b *testing.B) {
	sys := benchExploreSystem(b)
	dom := router.Single(sys, protocol.Classic, selection.Options{})
	var c router.Counters
	p := sys.Exits()[0]
	r := dom.NewRouter(p.ExitPoint, &c)
	sink := func(bgp.NodeID, *wire.Update) (int64, error) { return 0, nil }
	peers := len(sys.Peers(p.ExitPoint))

	// Warm the RIB maps, then measure a steady-state withdraw/inject cycle:
	// each half forces a best-route change and a coalesced send to every
	// peer of the exit router.
	r.Inject(0, 0, p.ID)
	r.Refresh(0, sink)
	cycle := func() {
		r.WithdrawExternal(0, 0, p.ID)
		r.Refresh(0, sink)
		r.Inject(0, 0, p.ID)
		r.Refresh(0, sink)
	}
	allocsPerRefresh := testing.AllocsPerRun(200, cycle) / 2

	// Full-pipeline probe: a converging msgsim run carries every UPDATE
	// through the codec on each hop; messages per second over repeated
	// runs is the operational substrate's throughput figure. The timed
	// window covers injection and message processing only — constructing
	// the simulator (topology wiring, RIB maps) is per-run setup, excluded
	// the same way b.ResetTimer excludes benchmark setup. One warmup run
	// primes code and allocator caches, and the accumulated window is wide
	// enough (~tens of ms) that scheduler jitter on a single-core runner
	// does not dominate the figure.
	var simTimer time.Duration
	simEpoch := time.Now()
	simRun := func(timed bool) int {
		s := msgsim.New(sys, protocol.Modified, selection.Options{}, msgsim.ConstantDelay(1))
		if timed {
			simTimer -= time.Since(simEpoch)
		}
		s.InjectAll()
		res := s.Run(0)
		if timed {
			simTimer += time.Since(simEpoch)
		}
		if !res.Quiesced {
			b.Fatal("pinned modified-protocol sim did not quiesce")
		}
		return res.Messages
	}
	simRun(false) // warmup
	simMsgs := 0
	const simRuns = 60
	for i := 0; i < simRuns; i++ {
		simMsgs += simRun(true)
	}
	simSec := simTimer.Seconds()

	sentBefore := c.Sent.Load()
	b.ReportAllocs()
	b.ResetTimer()
	start := time.Now()
	for i := 0; i < b.N; i++ {
		cycle()
	}
	coreSec := time.Since(start).Seconds()
	b.StopTimer()
	coreMsgs := c.Sent.Load() - sentBefore

	coreRate := float64(coreMsgs) / coreSec
	simRate := float64(simMsgs) / simSec
	b.ReportMetric(allocsPerRefresh, "allocs/refresh")
	b.ReportMetric(coreRate, "core-msgs/sec")
	b.ReportMetric(simRate, "sim-msgs/sec")

	record := struct {
		Job              string   `json:"job"`
		Routers          int      `json:"routers"`
		Peers            int      `json:"peers_of_exit"`
		AllocsPerRefresh float64  `json:"allocs_per_refresh"`
		CoreMsgsPerSec   float64  `json:"core_msgs_per_sec"`
		SimMsgsPerSec    float64  `json:"sim_msgs_per_sec"`
		SimMessages      int      `json:"sim_messages"`
		Env              benchEnv `json:"env"`
	}{
		Job:              "router-refresh/3-cluster-med-rich-seed13",
		Routers:          sys.N(),
		Peers:            peers,
		AllocsPerRefresh: allocsPerRefresh,
		CoreMsgsPerSec:   coreRate,
		SimMsgsPerSec:    simRate,
		SimMessages:      simMsgs,
		Env:              hostEnv(),
	}
	writeBenchJSON(b, "BENCH_router.json", record)
}
