package ibgp

// BenchmarkReachable and BenchmarkStateCodec pin the interned-arena
// exploration core: serial-vs-parallel wall clock and heap allocations per
// visited state go to BENCH_explore.json so the perf trajectory
// accumulates across commits. As with the census benchmark, the two
// worker configurations must produce byte-identical analyses — speed may
// never come from changed results.

import (
	"encoding/json"
	"os"
	"runtime"
	"testing"
	"time"

	"repro/internal/bgp"
	"repro/internal/explore"
	"repro/internal/protocol"
	"repro/internal/selection"
	"repro/internal/topology"
	"repro/internal/workload"
)

// benchExploreSystem is the pinned exploration workload: a 3-cluster
// MED-rich draw whose classic reachable graph has ~16k states and ~190k
// transitions — big enough that per-state costs dominate setup.
func benchExploreSystem(b *testing.B) *topology.System {
	b.Helper()
	params := workload.Params{
		Clusters: 3, MinClients: 2, MaxClients: 3, ASes: 3,
		Exits: 8, MaxMED: 3, MaxCost: 8, ExtraLinks: 3,
	}
	sys, err := workload.Generate(params, 13)
	if err != nil {
		b.Fatal(err)
	}
	return sys
}

func benchReachable(b *testing.B, sys *topology.System, workers int) (explore.Analysis, time.Duration) {
	b.Helper()
	e := protocol.New(sys, protocol.Classic, selection.Options{})
	begin := time.Now()
	a := explore.Reachable(e, explore.Options{
		Mode: explore.SingletonsPlusAll, MaxStates: 200000, Workers: workers,
	})
	elapsed := time.Since(begin)
	if a.Truncated {
		b.Fatal("benchmark exploration truncated; raise MaxStates")
	}
	return a, elapsed
}

func sameAnalysis(x, y explore.Analysis) bool {
	if x.States != y.States || x.Transitions != y.Transitions ||
		x.Truncated != y.Truncated || len(x.FixedPoints) != len(y.FixedPoints) {
		return false
	}
	for i := range x.FixedPoints {
		if !x.FixedPoints[i].Equal(y.FixedPoints[i]) {
			return false
		}
	}
	return true
}

func BenchmarkReachable(b *testing.B) {
	sys := benchExploreSystem(b)
	workers := runtime.GOMAXPROCS(0)

	// Heap discipline first: the arena path must not allocate a string key
	// or a cloned snapshot per visited state, so mallocs per state stays in
	// single digits (amortised arena/index growth) instead of tens.
	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	probe, _ := benchReachable(b, sys, 1)
	runtime.ReadMemStats(&after)
	mallocsPerState := float64(after.Mallocs-before.Mallocs) / float64(probe.States)

	var serial, parallel time.Duration
	var aSerial, aParallel explore.Analysis
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		aSerial, serial = benchReachable(b, sys, 1)
		aParallel, parallel = benchReachable(b, sys, workers)
		if !sameAnalysis(aSerial, aParallel) {
			b.Fatalf("workers=1 and workers=%d analyses diverge: %+v vs %+v",
				workers, aSerial, aParallel)
		}
	}
	b.ReportMetric(serial.Seconds()/parallel.Seconds(), "speedup")
	b.ReportMetric(mallocsPerState, "mallocs/state")

	record := struct {
		Job             string   `json:"job"`
		States          int      `json:"states"`
		Transitions     int      `json:"transitions"`
		Workers         int      `json:"workers"`
		SerialSec       float64  `json:"serial_sec"`
		ParallelSec     float64  `json:"parallel_sec"`
		Speedup         float64  `json:"speedup"`
		MallocsPerState float64  `json:"mallocs_per_state"`
		Identical       bool     `json:"analyses_identical"`
		Env             benchEnv `json:"env"`
	}{
		Job:             "reachable/3-cluster-med-rich-seed13",
		States:          aSerial.States,
		Transitions:     aSerial.Transitions,
		Workers:         workers,
		SerialSec:       serial.Seconds(),
		ParallelSec:     parallel.Seconds(),
		Speedup:         serial.Seconds() / parallel.Seconds(),
		MallocsPerState: mallocsPerState,
		Identical:       true,
		Env:             hostEnv(),
	}
	writeBenchJSON(b, "BENCH_explore.json", record)
}

// BenchmarkStateCodec measures one encode+decode round trip with reused
// buffers — the inner loop of both the serial and the parallel search.
// With warm scratch this is allocation-free; b.ReportAllocs keeps it so.
func BenchmarkStateCodec(b *testing.B) {
	sys := benchExploreSystem(b)
	e := protocol.New(sys, protocol.Classic, selection.Options{})
	all := make([]bgp.NodeID, sys.N())
	for u := range all {
		all[u] = bgp.NodeID(u)
	}
	e.ActivateSet(all)
	dst := make([]uint64, 0, e.StateWords())
	dst = e.EncodeState(dst)
	if err := e.DecodeState(dst); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dst = e.EncodeState(dst[:0])
		if err := e.DecodeState(dst); err != nil {
			b.Fatal(err)
		}
	}
}

// benchEnv is the host-parallelism stamp every BENCH_*.json record
// carries: throughput and speedup figures are only comparable across
// commits when the runner's CPU budget is known.
type benchEnv struct {
	GOMAXPROCS int `json:"gomaxprocs"`
	NumCPU     int `json:"num_cpu"`
}

func hostEnv() benchEnv {
	return benchEnv{GOMAXPROCS: runtime.GOMAXPROCS(0), NumCPU: runtime.NumCPU()}
}

func writeBenchJSON(b *testing.B, path string, record any) {
	b.Helper()
	out, err := json.MarshalIndent(record, "", "  ")
	if err != nil {
		b.Fatal(err)
	}
	if err := os.WriteFile(path, append(out, '\n'), 0o644); err != nil {
		b.Fatal(err)
	}
}
