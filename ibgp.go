// Package ibgp is a library reproduction of "Route Oscillations in I-BGP
// with Route Reflection" (Basu, Ong, Rasala, Shepherd, Wilfong; SIGCOMM
// 2002).
//
// It provides:
//
//   - the paper's formal model of I-BGP with route reflection: physical
//     and logical graphs, exit paths, the Transfer announcement relation
//     and fair activation sequences (Build*, NewEngine, Run);
//   - three advertisement policies: Classic I-BGP, the Walton et al.
//     per-neighbouring-AS proposal, and the paper's Modified protocol that
//     advertises all MED survivors (Choose^B);
//   - exhaustive stability analysis for small systems — the decision
//     problem the paper proves NP-complete (Analyze, StableSolutions);
//   - the 3-SAT reduction behind that proof (ReduceSAT and friends);
//   - an asynchronous message-level simulator with scriptable delays
//     (NewSim) and real TCP speakers on the loopback interface
//     (NewTCPNetwork), both running the same operational protocol logic;
//   - forwarding-plane analysis: real routes, loop detection, and the
//     Lemma 7.6/7.7 checks (NewForwardingPlane);
//   - every configuration from the paper's figures (Fig1a .. Fig14).
//
// A minimal session:
//
//	fig := ibgp.Fig1a()
//	eng := ibgp.NewEngine(fig.Sys, ibgp.Classic, ibgp.Options{})
//	res := ibgp.Run(eng, ibgp.RoundRobin(fig.Sys.N()), ibgp.RunOptions{})
//	// res.Outcome == ibgp.Cycled: the persistent oscillation of Figure 1(a).
//
//	eng = ibgp.NewEngine(fig.Sys, ibgp.Modified, ibgp.Options{})
//	res = ibgp.Run(eng, ibgp.RoundRobin(fig.Sys.N()), ibgp.RunOptions{})
//	// res.Outcome == ibgp.Converged: the paper's fix.
package ibgp

import (
	"io"

	"repro/internal/bgp"
	"repro/internal/explore"
	"repro/internal/faults"
	"repro/internal/figures"
	"repro/internal/forwarding"
	"repro/internal/msgsim"
	"repro/internal/protocol"
	"repro/internal/router"
	"repro/internal/selection"
	"repro/internal/speaker"
	"repro/internal/topology"
)

// Core model types.
type (
	// NodeID identifies a router inside the AS.
	NodeID = bgp.NodeID
	// PathID identifies an exit path.
	PathID = bgp.PathID
	// ASN identifies a neighbouring autonomous system.
	ASN = bgp.ASN
	// PathSet is a set of exit paths.
	PathSet = bgp.PathSet
	// ExitPath is an E-BGP route injected into the AS (Section 4).
	ExitPath = bgp.ExitPath
	// Route is an exit path as evaluated at a particular router.
	Route = bgp.Route

	// System is an immutable AS description: routers, clusters, sessions,
	// links and exit paths.
	System = topology.System
	// Builder assembles a System.
	Builder = topology.Builder
	// ExitSpec describes an exit path to inject.
	ExitSpec = topology.ExitSpec
	// Spec is the JSON-serializable form of a System.
	Spec = topology.Spec
	// Role distinguishes reflectors from clients.
	Role = topology.Role

	// Engine executes the paper's activation model.
	Engine = protocol.Engine
	// Policy selects the advertisement behaviour.
	Policy = protocol.Policy
	// Schedule produces fair activation sequences.
	Schedule = protocol.Schedule
	// Result reports a protocol run.
	Result = protocol.Result
	// RunOptions tunes Run.
	RunOptions = protocol.RunOptions
	// Outcome classifies how a run ended.
	Outcome = protocol.Outcome
	// Snapshot captures a routing configuration.
	Snapshot = protocol.Snapshot

	// Options bundles the route-selection knobs.
	Options = selection.Options
	// Order selects the rule 4/5 ordering (paper vs RFC).
	Order = selection.Order
	// MEDMode selects per-neighbour-AS or always-compare MED semantics.
	MEDMode = selection.MEDMode

	// Fig is a constructed paper figure.
	Fig = figures.Fig
)

// None marks the absence of a path.
const None = bgp.None

// Roles.
const (
	Reflector = topology.Reflector
	Client    = topology.Client
)

// Advertisement policies.
const (
	// Classic is standard I-BGP: advertise only the best route.
	Classic = protocol.Classic
	// Walton is the Walton et al. fix: best route per neighbouring AS.
	Walton = protocol.Walton
	// Modified is the paper's fix: advertise all MED survivors.
	Modified = protocol.Modified
	// Adaptive is the Section 10 future-work variant: classic behaviour
	// until a router detects its own route oscillating, then Modified.
	Adaptive = protocol.Adaptive
)

// Selection orders (footnote 4 of the paper).
const (
	// PaperOrder prefers E-BGP before IGP cost (Cisco/Juniper; default).
	PaperOrder = selection.PaperOrder
	// RFCOrder compares IGP cost first (RFC 1771 reading).
	RFCOrder = selection.RFCOrder
)

// MED comparison modes.
const (
	// PerNeighborAS is standard MED semantics.
	PerNeighborAS = selection.PerNeighborAS
	// AlwaysCompare is the "always-compare-med" mitigation.
	AlwaysCompare = selection.AlwaysCompare
)

// Run outcomes.
const (
	Converged = protocol.Converged
	Cycled    = protocol.Cycled
	Exhausted = protocol.Exhausted
)

// NewBuilder returns an empty topology builder.
func NewBuilder() *Builder { return topology.NewBuilder() }

// FullMesh starts a fully-meshed I-BGP topology (each router its own
// client-less cluster) and returns the builder plus the node ids.
func FullMesh(names ...string) (*Builder, []NodeID) { return topology.FullMesh(names...) }

// BuildSpec converts a JSON Spec into a System.
func BuildSpec(spec *Spec) (*System, error) { return topology.BuildSpec(spec) }

// SaveSystem writes a System as indented JSON.
func SaveSystem(w io.Writer, sys *System) error { return topology.Save(w, sys) }

// LoadSystem reads a System from its JSON form.
func LoadSystem(r io.Reader) (*System, error) { return topology.Load(r) }

// NewEngine returns an engine over sys in the paper's initial
// configuration (every router knows exactly its own exit paths).
func NewEngine(sys *System, policy Policy, opts Options) *Engine {
	return protocol.New(sys, policy, opts)
}

// Run drives the engine until stability, a proved cycle, or step
// exhaustion.
func Run(e *Engine, sch Schedule, opts RunOptions) Result { return protocol.Run(e, sch, opts) }

// RunSeeds runs k seeded random fair schedules from the initial
// configuration and returns the per-seed results.
func RunSeeds(e *Engine, k, maxSteps int) []Result { return protocol.RunSeeds(e, k, maxSteps) }

// RoundRobin activates one node at a time in increasing order.
func RoundRobin(n int) Schedule { return protocol.RoundRobin(n) }

// AllAtOnce activates every node simultaneously each step (the synchronous
// model).
func AllAtOnce(n int) Schedule { return protocol.AllAtOnce(n) }

// PermutationRounds activates every node once per round, in a fresh seeded
// random order each round.
func PermutationRounds(n int, seed int64) Schedule { return protocol.PermutationRounds(n, seed) }

// SubsetRounds activates seeded random subsets, covering every node each
// round.
func SubsetRounds(n int, seed int64) Schedule { return protocol.SubsetRounds(n, seed) }

// FixedSchedule replays the given activation sets cyclically.
func FixedSchedule(sets ...[]NodeID) Schedule { return protocol.Fixed(sets...) }

// Fig1a is the persistent-oscillation configuration of Figure 1(a).
func Fig1a() *Fig { return figures.Fig1a() }

// Fig1b is the rule-ordering configuration of Figure 1(b).
func Fig1b() *Fig { return figures.Fig1b() }

// Fig2 is the transient-oscillation configuration of Figure 2.
func Fig2() *Fig { return figures.Fig2() }

// Fig3 is the message-delay configuration of Figure 3 / Table 1.
func Fig3() *Fig { return figures.Fig3() }

// Fig12 is the believed-vs-real route configuration of Figure 12.
func Fig12() *Fig { return figures.Fig12() }

// Fig13 is the pinned Walton-et-al. counterexample standing in for
// Figure 13.
func Fig13() *Fig { return figures.Fig13() }

// Fig14 is the Dube-Scudder routing-loop configuration of Figure 14.
func Fig14() *Fig { return figures.Fig14() }

// Analysis is the exhaustive reachable-state analysis of a system under a
// policy (see package explore): it decides the paper's STABLE I-BGP WITH
// ROUTE REFLECTION question for small systems.
type Analysis = explore.Analysis

// Analyze explores every configuration reachable from the cold start.
// When subsets is true every non-empty activation set is considered
// (exact, exponential in routers); otherwise single activations plus the
// synchronous full set.
func Analyze(sys *System, policy Policy, opts Options, subsets bool) Analysis {
	e := protocol.New(sys, policy, opts)
	mode := explore.SingletonsPlusAll
	if subsets {
		mode = explore.AllSubsets
	}
	return explore.Reachable(e, explore.Options{Mode: mode})
}

// StableSolutions enumerates every stable solution of the system under
// classic I-BGP, reachable or not.
func StableSolutions(sys *System, opts Options) []Snapshot {
	e := protocol.New(sys, Classic, opts)
	enum := explore.EnumerateStableClassic(e, 0)
	if enum.Truncated {
		return nil
	}
	return enum.Solutions
}

// ForwardingPlane exposes real-route computation over a snapshot.
type ForwardingPlane = forwarding.Plane

// ForwardingTrace is one packet's real route.
type ForwardingTrace = forwarding.Trace

// NewForwardingPlane builds the forwarding plane implied by a snapshot.
func NewForwardingPlane(sys *System, snap Snapshot) *ForwardingPlane {
	return forwarding.NewPlane(sys, snap)
}

// Message-level simulation (package msgsim).
type (
	// Sim is the asynchronous message-level simulator.
	Sim = msgsim.Sim
	// SimResult reports one simulation run.
	SimResult = msgsim.Result
	// DelayFunc assigns per-message transit delays.
	DelayFunc = msgsim.DelayFunc
)

// Shared operational router core (package router), driven by both the
// message-level simulator and the TCP speakers.
type (
	// RouterEvent is one typed operational event (BestChanged, UpdateSent,
	// UpdateReceived, MRAIDeferred, Injected, Withdrawn).
	RouterEvent = router.Event
	// RouterEventKind classifies a RouterEvent.
	RouterEventKind = router.EventKind
	// OperationalCounters is a point-in-time snapshot of the shared
	// substrate counters (flaps, messages, deferrals, drops, rejects).
	OperationalCounters = router.Snapshot
)

// Typed operational event kinds.
const (
	BestChanged    = router.BestChanged
	UpdateSent     = router.UpdateSent
	UpdateReceived = router.UpdateReceived
	MRAIDeferred   = router.MRAIDeferred
	Injected       = router.Injected
	Withdrawn      = router.Withdrawn
	PeerDown       = router.PeerDown
	PeerUp         = router.PeerUp
	FaultDrop      = router.FaultDrop
	FaultDuplicate = router.FaultDuplicate
	FaultDelay     = router.FaultDelay
	FaultReorder   = router.FaultReorder
)

// NewSim creates a message-level simulator; inject routes with InjectAll
// or InjectAt, then Run.
func NewSim(sys *System, policy Policy, opts Options, delay DelayFunc) *Sim {
	return msgsim.New(sys, policy, opts, delay)
}

// ConstantDelay returns a fixed-delay model.
func ConstantDelay(d int64) DelayFunc { return msgsim.ConstantDelay(d) }

// RandomDelay returns a seeded uniform delay model on [min, max]; a
// reversed or negative range is rejected at construction.
func RandomDelay(seed, min, max int64) (DelayFunc, error) {
	return msgsim.RandomDelay(seed, min, max)
}

// MustRandomDelay is RandomDelay for ranges known valid at the call site;
// it panics on a bad range.
func MustRandomDelay(seed, min, max int64) DelayFunc {
	return msgsim.MustRandomDelay(seed, min, max)
}

// TCPNetwork runs the AS as concurrent speakers over loopback TCP.
type TCPNetwork = speaker.Network

// NewTCPNetwork assembles (without starting) a TCP speaker network.
func NewTCPNetwork(sys *System, policy Policy, opts Options) *TCPNetwork {
	return speaker.New(sys, policy, opts)
}

// Codec is a TCP speaker wire format; install one with
// TCPNetwork.SetCodec before Start.
type Codec = speaker.Codec

// Wire formats for TCPNetwork.SetCodec: the compact private codec (the
// default) and real BGP-4 messages per RFC 4271/4456/7911. Both are pure
// transport — the routing outcome is codec-independent.
var (
	PrivateCodec = speaker.PrivateCodec
	BGP4Codec    = speaker.BGP4
)

// Deterministic fault injection (package faults): seeded plans of
// wire-level fault fates — drop, duplicate, reorder, delay, session reset
// — installed on either substrate with SetFaults before the run.
type (
	// FaultPlan is a deterministic fault schedule; same plan, same fates.
	FaultPlan = faults.Plan
	// FaultReset schedules one session teardown and reopen.
	FaultReset = faults.Reset
)

// ParseFaultSpec parses the -faults CLI syntax, e.g.
// "seed=7,drop=0.05,dup=0.02,delay=0.2,maxdelay=30,reset=0-1@100+50,horizon=600".
func ParseFaultSpec(spec string) (*FaultPlan, error) { return faults.ParseSpec(spec) }

// RandomFaultPlan derives a pure fault plan from a seed for an n-router
// system (cfg bounds the intensity; see faults.RandomConfig).
func RandomFaultPlan(seed int64, n int, cfg faults.RandomConfig) (*FaultPlan, error) {
	return faults.RandomPlan(seed, n, cfg)
}
