package ibgp

// The benchmark harness regenerates every evaluation artifact of the
// paper: one Benchmark per experiment (E1-E23, each printing its measured
// outcome via the experiments package on the first iteration), plus
// micro-benchmarks of the substrates (selection, IGP, codec, engines).
// Run with:
//
//	go test -bench=. -benchmem

import (
	"testing"

	"repro/internal/bgp"
	"repro/internal/experiments"
	"repro/internal/msgsim"
	"repro/internal/protocol"
	"repro/internal/sat"
	"repro/internal/selection"
	"repro/internal/topology"
	"repro/internal/wire"
	"repro/internal/workload"
)

var benchOpts = experiments.Options{Seeds: 4, SweepSizes: []int{2, 4}}

func benchExperiment(b *testing.B, run func(experiments.Options) experiments.Report) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		r := run(benchOpts)
		if !r.Pass {
			b.Fatalf("%s failed: %s", r.ID, r.Measured)
		}
	}
}

// --- one benchmark per paper artifact ---------------------------------------

func BenchmarkE1Fig1a(b *testing.B)          { benchExperiment(b, experiments.E1Fig1a) }
func BenchmarkE2Fig1b(b *testing.B)          { benchExperiment(b, experiments.E2Fig1b) }
func BenchmarkE3Fig2(b *testing.B)           { benchExperiment(b, experiments.E3Fig2) }
func BenchmarkE4Fig3(b *testing.B)           { benchExperiment(b, experiments.E4Fig3) }
func BenchmarkE5VariableGadget(b *testing.B) { benchExperiment(b, experiments.E5VariableGadget) }
func BenchmarkE6ClauseGadget(b *testing.B)   { benchExperiment(b, experiments.E6ClauseGadget) }
func BenchmarkE7Reduction(b *testing.B)      { benchExperiment(b, experiments.E7Reduction) }
func BenchmarkE8Walton(b *testing.B)         { benchExperiment(b, experiments.E8Walton) }
func BenchmarkE9Loop(b *testing.B)           { benchExperiment(b, experiments.E9Loop) }
func BenchmarkE10Determinism(b *testing.B)   { benchExperiment(b, experiments.E10Determinism) }
func BenchmarkE11Overhead(b *testing.B)      { benchExperiment(b, experiments.E11Overhead) }
func BenchmarkE12Flush(b *testing.B)         { benchExperiment(b, experiments.E12Flush) }
func BenchmarkE13LoopFree(b *testing.B)      { benchExperiment(b, experiments.E13LoopFree) }
func BenchmarkE14Fig12(b *testing.B)         { benchExperiment(b, experiments.E14Fig12) }
func BenchmarkE15Adaptive(b *testing.B)      { benchExperiment(b, experiments.E15Adaptive) }
func BenchmarkE16Confederation(b *testing.B) { benchExperiment(b, experiments.E16Confederation) }
func BenchmarkE17DeepHierarchy(b *testing.B) { benchExperiment(b, experiments.E17DeepHierarchy) }
func BenchmarkE18SyncConvergence(b *testing.B) {
	benchExperiment(b, experiments.E18SyncConvergence)
}
func BenchmarkE19MultiPrefix(b *testing.B) { benchExperiment(b, experiments.E19MultiPrefix) }
func BenchmarkE20MetricAdjustment(b *testing.B) {
	benchExperiment(b, experiments.E20MetricAdjustment)
}
func BenchmarkE21EBGPChurn(b *testing.B) { benchExperiment(b, experiments.E21EBGPChurn) }
func BenchmarkE22MEDPrevalence(b *testing.B) {
	benchExperiment(b, experiments.E22MEDPrevalence)
}
func BenchmarkE23Census(b *testing.B) { benchExperiment(b, experiments.E23Census) }

// --- convergence scaling: the E11 sweep as per-size benchmarks ---------------

func benchConvergence(b *testing.B, clusters int, policy Policy) {
	sys := workload.MustGenerate(workload.Default(clusters), 1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eng := NewEngine(sys, policy, Options{})
		res := Run(eng, PermutationRounds(sys.N(), int64(i)+1), RunOptions{MaxSteps: 6000})
		if policy == Modified && res.Outcome != Converged {
			b.Fatalf("modified did not converge: %v", res.Outcome)
		}
	}
}

func BenchmarkConvergeClassic4(b *testing.B)   { benchConvergence(b, 4, Classic) }
func BenchmarkConvergeClassic8(b *testing.B)   { benchConvergence(b, 8, Classic) }
func BenchmarkConvergeWalton4(b *testing.B)    { benchConvergence(b, 4, Walton) }
func BenchmarkConvergeWalton8(b *testing.B)    { benchConvergence(b, 8, Walton) }
func BenchmarkConvergeModified4(b *testing.B)  { benchConvergence(b, 4, Modified) }
func BenchmarkConvergeModified8(b *testing.B)  { benchConvergence(b, 8, Modified) }
func BenchmarkConvergeModified16(b *testing.B) { benchConvergence(b, 16, Modified) }
func BenchmarkConvergeModified32(b *testing.B) { benchConvergence(b, 32, Modified) }

// --- ablations ----------------------------------------------------------------

// Always-compare-med (the Section 1 mitigation) on Figure 1(a).
func BenchmarkAblationAlwaysCompareMED(b *testing.B) {
	fig := Fig1a()
	for i := 0; i < b.N; i++ {
		eng := NewEngine(fig.Sys, Classic, Options{MED: AlwaysCompare})
		if res := Run(eng, RoundRobin(fig.Sys.N()), RunOptions{MaxSteps: 4000}); res.Outcome != Converged {
			b.Fatalf("always-compare-med did not converge: %v", res.Outcome)
		}
	}
}

// Rule-order ablation (footnote 4): RFC order on Figure 1(b) diverges.
func BenchmarkAblationRFCOrder(b *testing.B) {
	fig := Fig1b()
	for i := 0; i < b.N; i++ {
		eng := NewEngine(fig.Sys, Classic, Options{Order: RFCOrder})
		if res := Run(eng, RoundRobin(fig.Sys.N()), RunOptions{MaxSteps: 4000}); res.Outcome != Cycled {
			b.Fatalf("RFC order should cycle: %v", res.Outcome)
		}
	}
}

// Message-size ablation: advertised set sizes per policy on one system.
func BenchmarkAblationAdvertisedSetSize(b *testing.B) {
	sys := workload.MustGenerate(workload.Default(6), 3)
	for i := 0; i < b.N; i++ {
		for _, policy := range []Policy{Classic, Walton, Modified} {
			eng := NewEngine(sys, policy, Options{})
			res := Run(eng, RoundRobin(sys.N()), RunOptions{MaxSteps: 6000})
			total := 0
			for u := range res.Final.Advertised {
				total += res.Final.Advertised[u].Len()
			}
			if policy == Modified && total == 0 {
				b.Fatal("modified advertised nothing")
			}
		}
	}
}

// --- substrate micro-benchmarks ------------------------------------------------

func BenchmarkSelectionBest(b *testing.B) {
	routes := make([]bgp.Route, 0, 16)
	for i := 0; i < 16; i++ {
		routes = append(routes, bgp.Route{
			Path: bgp.ExitPath{
				ID: bgp.PathID(i), LocalPref: 100, ASPathLen: 2,
				NextAS: bgp.ASN(1 + i%3), MED: i % 4, ExitPoint: bgp.NodeID(i % 5),
			},
			At: 0, Metric: int64(10 + i*3%17), LearnedFrom: 1000 + i,
		})
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := selection.Best(routes, selection.Options{}); !ok {
			b.Fatal("no best")
		}
	}
}

func BenchmarkSelectionSurvivorsB(b *testing.B) {
	paths := make([]bgp.ExitPath, 0, 16)
	for i := 0; i < 16; i++ {
		paths = append(paths, bgp.ExitPath{
			ID: bgp.PathID(i), LocalPref: 100, ASPathLen: 2,
			NextAS: bgp.ASN(1 + i%3), MED: i % 4, ExitPoint: bgp.NodeID(i % 5),
		})
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if len(selection.SurvivorsB(paths, selection.PerNeighborAS)) == 0 {
			b.Fatal("no survivors")
		}
	}
}

func BenchmarkIGPDijkstra(b *testing.B) {
	sys := workload.MustGenerate(workload.Default(12), 5)
	g := sys.Phys()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sp := g.Dijkstra(bgp.NodeID(i % g.N()))
		if sp.Dist[(i+1)%g.N()] < 0 {
			b.Fatal("negative distance")
		}
	}
}

func BenchmarkEngineActivation(b *testing.B) {
	sys := workload.MustGenerate(workload.Default(8), 2)
	eng := protocol.New(sys, protocol.Modified, selection.Options{})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eng.Activate(bgp.NodeID(i % sys.N()))
	}
}

func BenchmarkMsgsimFig1aClassicChurn(b *testing.B) {
	fig := Fig3()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := msgsim.New(fig.Sys, protocol.Classic, selection.Options{}, msgsim.ConstantDelay(10))
		s.InjectAll()
		s.Run(2000)
	}
}

func BenchmarkWireUpdateEncodeDecode(b *testing.B) {
	upd := wire.Update{
		Withdrawn: []wire.WithdrawnRoute{{PathID: 1}, {PathID: 2}, {PathID: 3}},
		Announced: []wire.RouteRecord{
			{PathID: 4, LocalPref: 100, ASPathLen: 2, NextAS: 7, MED: 1, ExitPoint: 3, NextHopID: 2004, TieBreak: -1},
			{PathID: 5, LocalPref: 100, ASPathLen: 2, NextAS: 8, MED: 0, ExitPoint: 2, NextHopID: 2005, TieBreak: -1},
		},
	}
	var buf []byte
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var err error
		buf, err = wire.Append(buf[:0], upd)
		if err != nil {
			b.Fatal(err)
		}
		if _, _, err := wire.Decode(buf); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSATSolve(b *testing.B) {
	f := sat.Random3SAT(12, 40, 7)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sat.Solve(f)
	}
}

func BenchmarkSATReduce(b *testing.B) {
	f := sat.Random3SAT(4, 8, 7)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sat.Reduce(f); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTopologyBuild(b *testing.B) {
	spec := topology.ToSpec(Fig13().Sys)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := topology.BuildSpec(spec); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkStableEnumerationFig2(b *testing.B) {
	fig := Fig2()
	for i := 0; i < b.N; i++ {
		if sols := StableSolutions(fig.Sys, Options{}); len(sols) != 2 {
			b.Fatalf("solutions = %d", len(sols))
		}
	}
}

func BenchmarkReachabilityFig1a(b *testing.B) {
	fig := Fig1a()
	for i := 0; i < b.N; i++ {
		if a := Analyze(fig.Sys, Classic, Options{}, false); a.Stabilizable() {
			b.Fatal("Fig1a should not stabilize")
		}
	}
}
