package ibgp

import (
	"io"

	"repro/internal/lint"
	"repro/internal/topology"
)

// Static analysis (package lint): PASS/RISK/FAIL verdicts over a
// configuration without running any protocol engine.
type (
	// LintReport is the outcome of linting one configuration.
	LintReport = lint.Report
	// LintFinding is one diagnostic produced by a lint pass.
	LintFinding = lint.Finding
	// LintPass is one named static check.
	LintPass = lint.Pass
	// LintVerdict is the aggregate PASS/RISK/FAIL judgement.
	LintVerdict = lint.Verdict
	// LintSeverity classifies a lint finding.
	LintSeverity = lint.Severity
	// LintWitness is the machine-checkable evidence on prover findings: a
	// replay-verified stable configuration, or a dispute wheel between
	// two of them.
	LintWitness = lint.Witness
	// LintWheelSpoke is one router on a decoded dispute wheel.
	LintWheelSpoke = lint.WheelSpoke
)

// Lint verdicts.
const (
	// LintPassVerdict: no structural errors, no oscillation-risk pattern.
	LintPassVerdict = lint.VerdictPass
	// LintRiskVerdict: structurally sound, but a sufficient oscillation
	// precondition (Section 3) is present.
	LintRiskVerdict = lint.VerdictRisk
	// LintFailVerdict: the configuration violates the Section 4 model
	// constraints.
	LintFailVerdict = lint.VerdictFail
)

// Lint finding severities.
const (
	// LintInfo marks a safety certificate or note.
	LintInfo = lint.Info
	// LintRisk marks an oscillation-risk pattern.
	LintRisk = lint.Risk
	// LintError marks a structural misconfiguration.
	LintError = lint.Error
)

// LintSystem statically analyses a built System.
func LintSystem(source string, sys *System) *LintReport { return lint.LintSystem(source, sys) }

// LintSpec statically analyses a raw specification: structural passes run
// first (so configurations too broken to Build are still diagnosed), then
// the risk and certificate passes on the built System.
func LintSpec(source string, spec *Spec) *LintReport { return lint.LintSpec(source, spec) }

// ProveSystem statically analyses a built System in exact mode: on top of
// the heuristic passes, the SAT-backed provers decide whether a stable
// routing exists (UNSAT is a proof of persistent oscillation) and whether
// it is unique, attaching replay-verified witnesses to their findings.
func ProveSystem(source string, sys *System) *LintReport { return lint.ProveSystem(source, sys) }

// ProveSpec is LintSpec in exact mode: structural passes on the raw
// specification, then heuristic and SAT-backed prover passes on the built
// System.
func ProveSpec(source string, spec *Spec) *LintReport { return lint.ProveSpec(source, spec) }

// LintPasses returns every registered lint pass.
func LintPasses() []LintPass { return lint.Passes() }

// ParseSpec decodes a topology specification from JSON without building
// it, for use with LintSpec.
func ParseSpec(r io.Reader) (*Spec, error) { return topology.ParseSpec(r) }

// WriteLintText renders reports as human-readable text; verbose includes
// info-level findings (the safety certificates).
func WriteLintText(w io.Writer, verbose bool, reports ...*LintReport) error {
	return lint.WriteText(w, verbose, reports...)
}

// WriteLintJSON renders reports as an indented JSON array.
func WriteLintJSON(w io.Writer, reports ...*LintReport) error {
	return lint.WriteJSON(w, reports...)
}
