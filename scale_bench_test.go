package ibgp

// BenchmarkScale pins the prefix-sharded operational core at ISP scale: a
// routers x prefixes grid of generated provider topologies, each brought
// through a full warm-up convergence and a few churn rounds on the msgsim
// substrate with the parallel refresh fan-out enabled, plus one
// chaos-plan variant through campaign.ScaleJob. Sustained msgs/sec per
// grid point goes to BENCH_scale.json; the 1012-router x 256-prefix
// flagship point must complete its warm-up quiescence within the
// benchmark's time bound, which is what keeps "domain of R routers and P
// prefixes" an operational claim rather than an extrapolation.

import (
	"context"
	"runtime"
	"testing"
	"time"

	"repro/internal/bgp"
	"repro/internal/campaign"
	"repro/internal/churn"
	"repro/internal/msgsim"
	"repro/internal/protocol"
	"repro/internal/selection"
	"repro/internal/topogen"
	"repro/internal/topology"
)

// scaleResult is one grid point's record.
type scaleResult struct {
	Name           string  `json:"name"`
	Routers        int     `json:"routers"`
	Prefixes       int     `json:"prefixes"`
	WarmupSec      float64 `json:"warmup_sec"`
	WarmupMsgs     int     `json:"warmup_msgs"`
	WarmupPerSec   float64 `json:"warmup_msgs_per_sec"`
	ChurnRounds    int     `json:"churn_rounds"`
	ChurnSec       float64 `json:"churn_sec"`
	ChurnMsgs      int     `json:"churn_msgs"`
	ChurnPerSec    float64 `json:"churn_msgs_per_sec"`
	Quiesced       bool    `json:"quiesced"`
	WithinBoundSec float64 `json:"within_bound_sec"`
}

// scalePoint drives one grid point: generate, build the overlay domain,
// warm up to quiescence under the time bound, then run churn rounds to
// quiescence. The event budget is a divergence guard only — the bound
// that matters is wall-clock.
func scalePoint(b *testing.B, name string, spec topogen.Spec, prefixes, rounds int, bound time.Duration) scaleResult {
	b.Helper()
	spec.Prefixes = prefixes
	tsp, err := topogen.Generate(spec, 1)
	if err != nil {
		b.Fatal(err)
	}
	systems, err := topology.BuildSpecAll(tsp)
	if err != nil {
		b.Fatal(err)
	}
	dom := make(map[uint32]*topology.System, len(systems))
	for i, sys := range systems {
		dom[uint32(i)] = sys
	}
	base := systems[0]

	const maxEvents = 100_000_000
	s := msgsim.NewMulti(dom, protocol.Modified, selection.Options{}, msgsim.ConstantDelay(1))
	s.SetWorkers(runtime.GOMAXPROCS(0))

	start := time.Now()
	s.InjectAll()
	res := s.Run(maxEvents)
	warmSec := time.Since(start).Seconds()
	if !res.Quiesced {
		b.Fatalf("%s: warm-up did not quiesce in %d events", name, maxEvents)
	}
	if warmSec > bound.Seconds() {
		b.Fatalf("%s: warm-up took %.1fs, bound %v", name, warmSec, bound)
	}
	warmMsgs := res.Messages

	cspec := churn.DefaultSpec()
	cspec.Prefixes = len(dom)
	paths := make([]bgp.PathID, len(base.Exits()))
	for i, p := range base.Exits() {
		paths[i] = p.ID
	}
	st, err := churn.NewStream(cspec, paths)
	if err != nil {
		b.Fatal(err)
	}
	start = time.Now()
	for rd := 0; rd < rounds; rd++ {
		at := s.Now() + 1
		for _, ev := range st.Next() {
			if ev.Withdraw {
				s.WithdrawPrefixAt(at+ev.At, ev.Prefix, ev.Path)
			} else {
				s.InjectPrefixAt(at+ev.At, ev.Prefix, ev.Path)
			}
		}
		res = s.Run(res.Events + maxEvents)
		if !res.Quiesced {
			b.Fatalf("%s: churn round %d did not quiesce", name, rd)
		}
	}
	churnSec := time.Since(start).Seconds()
	churnMsgs := res.Messages - warmMsgs

	return scaleResult{
		Name:           name,
		Routers:        base.N(),
		Prefixes:       len(dom),
		WarmupSec:      warmSec,
		WarmupMsgs:     warmMsgs,
		WarmupPerSec:   float64(warmMsgs) / warmSec,
		ChurnRounds:    rounds,
		ChurnSec:       churnSec,
		ChurnMsgs:      churnMsgs,
		ChurnPerSec:    float64(churnMsgs) / churnSec,
		Quiesced:       true,
		WithinBoundSec: bound.Seconds(),
	}
}

func BenchmarkScale(b *testing.B) {
	mid := topogen.Default()
	mid.ClientsPerPoP = 5
	type point struct {
		name     string
		spec     topogen.Spec
		prefixes int
		rounds   int
		bound    time.Duration
	}
	points := []point{
		{"small-64p", topogen.Small(), 64, 2, 60 * time.Second},
		{"mid-64p", mid, 64, 2, 120 * time.Second},
		{"default-64p", topogen.Default(), 64, 1, 180 * time.Second},
		{"default-256p", topogen.Default(), 256, 1, 300 * time.Second},
	}
	if testing.Short() {
		points = []point{{"small-16p", topogen.Small(), 16, 1, 60 * time.Second}}
	}

	var grid []scaleResult
	var chaosRes campaign.SeedResult
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		grid = grid[:0]
		for _, p := range points {
			grid = append(grid, scalePoint(b, p.name, p.spec, p.prefixes, p.rounds, p.bound))
		}

		// Chaos-plan variant: the campaign job's fault-injection pass over
		// a small multi-prefix domain; every plan must re-converge to the
		// Lemma 7.4 reference, stay loop-free and close the ledger.
		job := campaign.ScaleJob{Spec: topogen.Small(), Plans: 2}
		job.Spec.Prefixes = 16
		var m campaign.Meter
		chaosRes = job.Run(context.Background(), 1, &m)
		if chaosRes.Err != "" {
			b.Fatalf("scale chaos variant: %s", chaosRes.Err)
		}
		if chaosRes.Reconverged != chaosRes.ChaosPlans || chaosRes.LoopFree != chaosRes.ChaosPlans || chaosRes.LedgerBroken != 0 {
			b.Fatalf("scale chaos variant violated invariants: %+v", chaosRes)
		}
	}
	b.StopTimer()

	flag := grid[len(grid)-1]
	b.ReportMetric(flag.WarmupPerSec, "flagship-msgs/sec")
	b.ReportMetric(flag.WarmupSec, "flagship-warmup-sec")

	record := struct {
		Job         string        `json:"job"`
		Workers     int           `json:"workers"`
		Grid        []scaleResult `json:"grid"`
		ChaosPlans  int           `json:"chaos_plans"`
		Reconverged int           `json:"chaos_reconverged"`
		LoopFree    int           `json:"chaos_loop_free"`
		Env         benchEnv      `json:"env"`
	}{
		Job:         "scale/topogen-grid-seed1",
		Workers:     runtime.GOMAXPROCS(0),
		Grid:        grid,
		ChaosPlans:  chaosRes.ChaosPlans,
		Reconverged: chaosRes.Reconverged,
		LoopFree:    chaosRes.LoopFree,
		Env:         hostEnv(),
	}
	writeBenchJSON(b, "BENCH_scale.json", record)
}
