// Command ibgplint statically analyses I-BGP route-reflection
// configurations for structural misconfigurations and oscillation-risk
// patterns, without running any protocol engine (package lint).
//
// Usage:
//
//	ibgplint [-json] [-v] [-fail-on none|risk|fail] [-figure NAME|all]
//	         [-confirm N] [-workers N] [topology.json ...]
//
// Each input gets a PASS/RISK/FAIL verdict: FAIL for violations of the
// paper's structural model (Section 4), RISK when a sufficient
// oscillation precondition is present (the Section 3 MED/cluster
// interaction or a cross-cluster dispute cycle), PASS otherwise — with
// safety certificates explaining why (-v shows them).
//
// The exit status is 0 unless -fail-on is set: with -fail-on fail the
// command exits 1 when any input FAILs, with -fail-on risk when any input
// is RISK or worse. The default is reporting-only so that linting a
// directory of example topologies (including deliberately broken
// fixtures) succeeds in CI.
//
// With -confirm N, each RISK verdict is additionally checked dynamically:
// the exhaustive reachable-state search (budget N states, parallelised
// across -workers goroutines) either proves the oscillation persistent or
// demotes it to "transient from cold start" in an extra finding.
//
// Confederation specs (package confed) are skipped with a note: they
// describe a different session model.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"

	"repro/internal/cli"
	"repro/internal/figures"
	"repro/internal/lint"
	"repro/internal/topology"
)

func main() {
	var (
		asJSON  = flag.Bool("json", false, "emit the reports as JSON")
		verbose = flag.Bool("v", false, "also print info-level findings (safety certificates)")
		failOn  = flag.String("fail-on", "none", "exit nonzero at this verdict or worse: none, risk or fail")
		figure  = flag.String("figure", "", "lint a paper figure ("+fmt.Sprint(cli.FigureNames())+") or \"all\"")
		confirm = flag.Int("confirm", 0, "state budget for dynamically confirming RISK verdicts (0: static only)")
		workers = flag.Int("workers", 1, "goroutines per confirming search (0: GOMAXPROCS); deterministic")
	)
	flag.Parse()
	if *workers == 0 {
		*workers = runtime.GOMAXPROCS(0)
	}

	var threshold lint.Verdict
	switch *failOn {
	case "none":
		threshold = lint.VerdictFail + 1
	case "risk":
		threshold = lint.VerdictRisk
	case "fail":
		threshold = lint.VerdictFail
	default:
		fmt.Fprintf(os.Stderr, "ibgplint: unknown -fail-on %q (want none, risk or fail)\n", *failOn)
		os.Exit(2)
	}
	if *figure == "" && flag.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "ibgplint: nothing to lint; pass topology JSON files and/or -figure")
		flag.Usage()
		os.Exit(2)
	}

	type linted struct {
		report *lint.Report
		sys    *topology.System // nil when the input did not build
	}
	var inputs []linted
	if *figure != "" {
		for _, e := range figures.All() {
			if *figure == "all" || *figure == e.Name {
				sys := e.Build().Sys
				inputs = append(inputs, linted{lint.LintSystem("fig"+e.Name, sys), sys})
			}
		}
		if len(inputs) == 0 {
			fmt.Fprintf(os.Stderr, "ibgplint: unknown figure %q (want one of %v or all)\n", *figure, cli.FigureNames())
			os.Exit(2)
		}
	}
	for _, path := range flag.Args() {
		r, sys := lintFile(path)
		inputs = append(inputs, linted{r, sys})
	}

	var reports []*lint.Report
	for _, in := range inputs {
		if *confirm > 0 && in.sys != nil {
			lint.Confirm(in.report, in.sys, lint.ConfirmOptions{
				MaxStates: *confirm, Workers: *workers,
			})
		}
		reports = append(reports, in.report)
	}

	var err error
	if *asJSON {
		err = lint.WriteJSON(os.Stdout, reports...)
	} else {
		err = lint.WriteText(os.Stdout, *verbose, reports...)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "ibgplint:", err)
		os.Exit(2)
	}
	for _, r := range reports {
		if r.Verdict >= threshold {
			os.Exit(1)
		}
	}
}

// lintFile lints one topology file, folding I/O and parse problems into
// the report as findings so a bad file cannot abort a multi-file run. The
// built system is returned alongside when the spec builds, for dynamic
// confirmation.
func lintFile(path string) (*lint.Report, *topology.System) {
	data, err := os.ReadFile(path)
	if err != nil {
		return errorReport(path, "read", err), nil
	}
	if isConfedSpec(data) {
		return &lint.Report{
			Source:  path,
			Verdict: lint.VerdictPass,
			Findings: []lint.Finding{{
				Pass:     "parse",
				Severity: lint.Info,
				Detail:   "confederation spec (subASes): skipped — confed-BGP uses a different session model",
			}},
		}, nil
	}
	spec, err := topology.ParseSpec(bytes.NewReader(data))
	if err != nil {
		return errorReport(path, "parse", err), nil
	}
	r := lint.LintSpec(path, spec)
	sys, buildErr := topology.BuildSpec(spec)
	if buildErr != nil {
		sys = nil
	}
	return r, sys
}

// isConfedSpec sniffs for the confederation schema's mandatory subASes key.
func isConfedSpec(data []byte) bool {
	var probe map[string]json.RawMessage
	if err := json.Unmarshal(data, &probe); err != nil {
		return false
	}
	_, ok := probe["subASes"]
	return ok
}

func errorReport(path, pass string, err error) *lint.Report {
	return &lint.Report{
		Source:  path,
		Verdict: lint.VerdictFail,
		Findings: []lint.Finding{{
			Pass:     pass,
			Severity: lint.Error,
			Detail:   err.Error(),
		}},
	}
}
