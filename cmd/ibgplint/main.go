// Command ibgplint statically analyses I-BGP route-reflection
// configurations for structural misconfigurations and oscillation-risk
// patterns, without running any protocol engine (package lint).
//
// Usage:
//
//	ibgplint [-json] [-v] [-prove] [-fail-on none|risk|fail] [-figure NAME|all]
//	         [-gen k=v,...] [-seed N] [-gen-out FILE]
//	         [-confirm N] [-workers N] [topology.json ...]
//
// Each input gets a PASS/RISK/FAIL verdict: FAIL for violations of the
// paper's structural model (Section 4), RISK when a sufficient
// oscillation precondition is present (the Section 3 MED/cluster
// interaction or a cross-cluster dispute cycle), PASS otherwise — with
// safety certificates explaining why (-v shows them).
//
// With -prove, the SAT-backed exact passes run as well: prove-stable
// decides whether any stable routing exists (UNSAT is a proof of
// persistent oscillation), prove-wheel whether it is unique. Findings
// carry decoded witnesses — a replay-verified stable configuration, or a
// dispute wheel between two of them — printed inline in text mode and in
// full under -json.
//
// With -gen, an ISP-style topology is generated (package topogen; keys
// regions, rrs, pops, poprrs, clients, ases, exits, maxmed, corecost,
// accesscost — "-gen default" and "-gen small" select the bundled
// families) from -seed and linted like any other input; -gen-out writes
// its JSON for reuse ("-" for stdout).
//
// The exit status is 0 unless -fail-on is set: with -fail-on fail the
// command exits 1 when any input FAILs, with -fail-on risk when any input
// is RISK or worse. The default is reporting-only so that linting a
// directory of example topologies (including deliberately broken
// fixtures) succeeds in CI.
//
// With -confirm N, each RISK verdict is additionally checked dynamically:
// the exhaustive reachable-state search (budget N states, parallelised
// across -workers goroutines) either proves the oscillation persistent or
// demotes it to "transient from cold start" in an extra finding.
//
// Confederation specs (package confed) are skipped with a note: they
// describe a different session model.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"

	"repro/internal/cli"
	"repro/internal/figures"
	"repro/internal/lint"
	"repro/internal/topogen"
	"repro/internal/topology"
)

func main() {
	var (
		asJSON  = flag.Bool("json", false, "emit the reports as JSON")
		verbose = flag.Bool("v", false, "also print info-level findings (safety certificates)")
		prove   = flag.Bool("prove", false, "run the SAT-backed exact passes (prove-stable, prove-wheel) and print witnesses")
		failOn  = flag.String("fail-on", "none", "exit nonzero at this verdict or worse: none, risk or fail")
		figure  = flag.String("figure", "", "lint a paper figure ("+fmt.Sprint(cli.FigureNames())+") or \"all\"")
		gen     = flag.String("gen", "", "generate and lint an ISP-style topology (topogen key=value list, or \"default\"/\"small\")")
		genSeed = flag.Int64("seed", 1, "seed for -gen")
		genOut  = flag.String("gen-out", "", "write the generated topology's JSON to this file (\"-\" for stdout)")
		confirm = flag.Int("confirm", 0, "state budget for dynamically confirming RISK verdicts (0: static only)")
		workers = flag.Int("workers", 1, "goroutines per confirming search (0: GOMAXPROCS); deterministic")
	)
	flag.Parse()
	if *workers == 0 {
		*workers = runtime.GOMAXPROCS(0)
	}

	var threshold lint.Verdict
	switch *failOn {
	case "none":
		threshold = lint.VerdictFail + 1
	case "risk":
		threshold = lint.VerdictRisk
	case "fail":
		threshold = lint.VerdictFail
	default:
		fmt.Fprintf(os.Stderr, "ibgplint: unknown -fail-on %q (want none, risk or fail)\n", *failOn)
		os.Exit(2)
	}
	if *figure == "" && *gen == "" && flag.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "ibgplint: nothing to lint; pass topology JSON files, -figure and/or -gen")
		flag.Usage()
		os.Exit(2)
	}

	lintSystem, lintSpecFn := lint.LintSystem, lint.LintSpec
	if *prove {
		lintSystem, lintSpecFn = lint.ProveSystem, lint.ProveSpec
	}

	type linted struct {
		report *lint.Report
		sys    *topology.System // nil when the input did not build
	}
	var inputs []linted
	if *figure != "" {
		for _, e := range figures.All() {
			if *figure == "all" || *figure == e.Name {
				sys := e.Build().Sys
				inputs = append(inputs, linted{lintSystem("fig"+e.Name, sys), sys})
			}
		}
		if len(inputs) == 0 {
			fmt.Fprintf(os.Stderr, "ibgplint: unknown figure %q (want one of %v or all)\n", *figure, cli.FigureNames())
			os.Exit(2)
		}
	}
	if *gen != "" {
		base := topogen.Default()
		args := *gen
		switch args {
		case "default":
			args = ""
		case "small":
			base, args = topogen.Small(), ""
		}
		tspec, err := cli.ParseTopogenSpec(args, base)
		if err != nil {
			fmt.Fprintln(os.Stderr, "ibgplint:", err)
			os.Exit(2)
		}
		spec, err := topogen.Generate(tspec, *genSeed)
		if err != nil {
			fmt.Fprintln(os.Stderr, "ibgplint:", err)
			os.Exit(2)
		}
		if *genOut != "" {
			if err := writeGenerated(*genOut, spec); err != nil {
				fmt.Fprintln(os.Stderr, "ibgplint:", err)
				os.Exit(2)
			}
		}
		source := fmt.Sprintf("topogen(seed=%d,n=%d)", *genSeed, tspec.N())
		r := lintSpecFn(source, spec)
		sys, buildErr := topology.BuildSpec(spec)
		if buildErr != nil {
			sys = nil
		}
		inputs = append(inputs, linted{r, sys})
	}
	for _, path := range flag.Args() {
		r, sys := lintFile(path, lintSpecFn)
		inputs = append(inputs, linted{r, sys})
	}

	var reports []*lint.Report
	for _, in := range inputs {
		if *confirm > 0 && in.sys != nil {
			lint.Confirm(in.report, in.sys, lint.ConfirmOptions{
				MaxStates: *confirm, Workers: *workers,
			})
		}
		reports = append(reports, in.report)
	}

	var err error
	if *asJSON {
		err = lint.WriteJSON(os.Stdout, reports...)
	} else {
		err = lint.WriteText(os.Stdout, *verbose, reports...)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "ibgplint:", err)
		os.Exit(2)
	}
	for _, r := range reports {
		if r.Verdict >= threshold {
			os.Exit(1)
		}
	}
}

// writeGenerated saves a generated topology's JSON ("-" writes stdout).
func writeGenerated(path string, spec *topology.Spec) error {
	if path == "-" {
		return topogen.Write(os.Stdout, spec)
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := topogen.Write(f, spec); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// lintFile lints one topology file with the selected spec entry point
// (LintSpec, or ProveSpec under -prove), folding I/O and parse problems
// into the report as findings so a bad file cannot abort a multi-file
// run. The built system is returned alongside when the spec builds, for
// dynamic confirmation.
func lintFile(path string, lintSpecFn func(string, *topology.Spec) *lint.Report) (*lint.Report, *topology.System) {
	data, err := os.ReadFile(path)
	if err != nil {
		return errorReport(path, "read", err), nil
	}
	if isConfedSpec(data) {
		return &lint.Report{
			Source:  path,
			Verdict: lint.VerdictPass,
			Findings: []lint.Finding{{
				Pass:     "parse",
				Severity: lint.Info,
				Detail:   "confederation spec (subASes): skipped — confed-BGP uses a different session model",
			}},
		}, nil
	}
	spec, err := topology.ParseSpec(bytes.NewReader(data))
	if err != nil {
		return errorReport(path, "parse", err), nil
	}
	r := lintSpecFn(path, spec)
	sys, buildErr := topology.BuildSpec(spec)
	if buildErr != nil {
		sys = nil
	}
	return r, sys
}

// isConfedSpec sniffs for the confederation schema's mandatory subASes key.
func isConfedSpec(data []byte) bool {
	var probe map[string]json.RawMessage
	if err := json.Unmarshal(data, &probe); err != nil {
		return false
	}
	_, ok := probe["subASes"]
	return ok
}

func errorReport(path, pass string, err error) *lint.Report {
	return &lint.Report{
		Source:  path,
		Verdict: lint.VerdictFail,
		Findings: []lint.Finding{{
			Pass:     pass,
			Severity: lint.Error,
			Detail:   err.Error(),
		}},
	}
}
