// Command ibgpsoak drives a seeded churn workload against the operational
// substrates for a wall-clock duration, continuously asserting the rolling
// invariants (windowed Lemma 7.4 re-convergence after each faultless quiet
// window, forwarding loop freedom, bounded RIB growth, quiescence-ledger
// closure), and optionally serves a BMP-style live telemetry feed while it
// runs.
//
// Usage:
//
//	ibgpsoak [-spec default|small|KVLIST] [-topology FILE | -figure N]
//	         [-seed N] [-duration D] [-rate R] [-churn KVLIST]
//	         [-faults SPEC] [-substrate sim|tcp|both] [-mrai N] [-workers N]
//	         [-policy modified|...] [-order paper|rfc] [-med standard|always]
//	         [-codec private|bgp4] [-listen HOST:PORT] [-stats-every D] [-agg]
//
// The topology comes from the ISP generator family (-spec, seeded by
// -seed) unless -topology or -figure names one explicitly. The churn
// workload is DefaultSpec with the run seed, -rate as a shorthand for its
// event rate, and -churn for full control ("seed=2,prefixes=8,rate=50,
// period=500,burst=200,flap=0.3"). -duration maps onto a deterministic
// round count, so the final aggregate is a pure function of the seed:
// "-substrate both" runs the discrete-event simulator and the loopback
// TCP speakers on the identical stream and fails if their aggregates
// differ.
//
// -codec picks the TCP speakers' wire format (private or real BGP-4). The
// deterministic aggregate is codec-independent, so "-substrate both
// -codec bgp4" doubles as a wire-format differential against the sim.
//
// -listen exposes the live feed: GET /events streams newline-delimited
// JSON router events with periodic aggregate records, /stats and
// /counters serve snapshots. -agg trims stdout to the deterministic
// aggregate alone (wall-clock metrics vary run to run), which is what CI
// byte-compares across runs.
//
// Exit status: 0 clean, 1 invariant violations or substrate divergence,
// 2 usage errors.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"reflect"
	"time"

	"repro/internal/churn"
	"repro/internal/cli"
	"repro/internal/faults"
	"repro/internal/telemetry"
	"repro/internal/topogen"
	"repro/internal/topology"
)

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "ibgpsoak:", err)
	os.Exit(2)
}

// resolveSystem picks the topology: an explicit file or figure wins,
// otherwise the topogen family named by -spec is generated with the run
// seed.
func resolveSystem(topoPath, figure, spec string, seed int64) (*topology.System, string, error) {
	if topoPath != "" || figure != "" {
		sys, err := cli.LoadSystem(topoPath, figure)
		return sys, "loaded", err
	}
	base := topogen.Default()
	kv := spec
	switch spec {
	case "", "default":
		kv = ""
	case "small":
		base, kv = topogen.Small(), ""
	}
	tspec, err := cli.ParseTopogenSpec(kv, base)
	if err != nil {
		return nil, "", err
	}
	gen, err := topogen.Generate(tspec, seed)
	if err != nil {
		return nil, "", err
	}
	sys, err := topology.BuildSpec(gen)
	return sys, fmt.Sprintf("topogen %d routers", tspec.N()), err
}

func main() {
	var (
		spec       = flag.String("spec", "default", `topogen family: "default", "small", or key=value overrides (regions, rrs, pops, poprrs, clients, ases, exits, maxmed, corecost, accesscost)`)
		topoPath   = flag.String("topology", "", "topology JSON file (overrides -spec)")
		figure     = flag.String("figure", "", "paper figure name (overrides -spec)")
		seed       = flag.Int64("seed", 1, "run seed: topology generation, churn stream and sim delays")
		duration   = flag.Duration("duration", 30*time.Second, "soak length; maps onto a deterministic round count")
		rate       = flag.Float64("rate", 0, "churn events per second (shorthand for -churn rate=R; 0 keeps the default)")
		churnSpec  = flag.String("churn", "", `full churn workload, e.g. "prefixes=8,rate=50,period=500,burst=200,flap=0.3"`)
		faultSpec  = flag.String("faults", "", `fault plan, e.g. "seed=7,drop=0.05,delay=0.2,maxdelay=30,horizon=600"`)
		substrate  = flag.String("substrate", "both", "sim, tcp or both")
		mrai       = flag.Int64("mrai", 0, "minimum route advertisement interval, sim ticks / tcp ms (0 off)")
		workers    = flag.Int("workers", 1, "per-router refresh workers; every value yields the identical UPDATE stream, aggregate and state hash")
		policy     = flag.String("policy", "modified", "classic, walton, modified or adaptive")
		order      = flag.String("order", "paper", "rule order: paper or rfc")
		med        = flag.String("med", "standard", "MED mode: standard or always")
		codecName  = flag.String("codec", "private", "tcp wire format: private or bgp4")
		listen     = flag.String("listen", "", "serve the live telemetry feed on HOST:PORT (empty disables)")
		statsEvery = flag.Duration("stats-every", 2*time.Second, "interval between aggregate records on /events")
		aggOnly    = flag.Bool("agg", false, "print only the deterministic aggregate (for run-to-run comparison)")
	)
	flag.Parse()

	sys, origin, err := resolveSystem(*topoPath, *figure, *spec, *seed)
	if err != nil {
		fatal(err)
	}
	pol, err := cli.ParsePolicy(*policy)
	if err != nil {
		fatal(err)
	}
	opts, err := cli.ParseOptions(*order, *med)
	if err != nil {
		fatal(err)
	}
	plan, err := faults.ParseSpec(*faultSpec)
	if err != nil {
		fatal(err)
	}
	if !plan.Active() {
		plan = nil
	}
	cspec := churn.DefaultSpec()
	cspec.Seed = *seed
	if *rate > 0 {
		cspec.Rate = *rate
	}
	cspec, err = cli.ParseChurnSpec(*churnSpec, cspec)
	if err != nil {
		fatal(err)
	}
	codec, err := cli.ParseCodec(*codecName)
	if err != nil {
		fatal(err)
	}

	cfg := churn.Config{
		Spec:      cspec,
		Rounds:    cspec.Rounds(*duration),
		Policy:    pol,
		Opts:      opts,
		Plan:      plan,
		MRAI:      *mrai,
		Workers:   *workers,
		DelaySeed: *seed,
		Codec:     codec,
	}

	if *listen != "" {
		feed := telemetry.NewFeed()
		srv, err := telemetry.Serve(feed, *listen, *statsEvery)
		if err != nil {
			fatal(err)
		}
		defer srv.Close()
		cfg.EventsBatch = feed.SinkBatch
		cfg.BindCounters = feed.BindCounters
		cfg.Latency = feed.RecordConvergence
		fmt.Fprintf(os.Stderr, "ibgpsoak: telemetry on http://%s (/events, /stats, /counters)\n", srv.Addr())
	}

	fmt.Fprintf(os.Stderr, "ibgpsoak: %s, %d rounds of %s, substrate %s\n",
		origin, cfg.Rounds, cspec, *substrate)

	run := func(name string, drive func(*topology.System, churn.Config) (*churn.Report, error)) *churn.Report {
		rep, err := drive(sys, cfg)
		if err != nil {
			fatal(err)
		}
		for _, v := range rep.Violations {
			fmt.Fprintf(os.Stderr, "ibgpsoak: %s: VIOLATION %s\n", name, v)
		}
		fmt.Fprintf(os.Stderr, "ibgpsoak: %s: %d rounds, %d churn events, %d msgs, %.0f msgs/sec, convergence p50 %d p99 %d, %d violations\n",
			name, rep.Agg.Rounds, rep.Agg.Events, rep.Measured.Counters.Sent,
			rep.Measured.MsgsPerSec, rep.Measured.Convergence.P50, rep.Measured.Convergence.P99,
			len(rep.Violations))
		return rep
	}

	out := json.NewEncoder(os.Stdout)
	out.SetIndent("", "  ")
	emit := func(v any) {
		if err := out.Encode(v); err != nil {
			fatal(err)
		}
	}

	ok := true
	switch *substrate {
	case "sim":
		rep := run("sim", churn.SoakSim)
		ok = rep.OK()
		if *aggOnly {
			emit(rep.Agg)
		} else {
			emit(rep)
		}
	case "tcp":
		rep := run("tcp", churn.SoakTCP)
		ok = rep.OK()
		if *aggOnly {
			emit(rep.Agg)
		} else {
			emit(rep)
		}
	case "both":
		sim := run("sim", churn.SoakSim)
		tcp := run("tcp", churn.SoakTCP)
		match := reflect.DeepEqual(sim.Agg, tcp.Agg)
		ok = sim.OK() && tcp.OK() && match
		if !match {
			fmt.Fprintf(os.Stderr, "ibgpsoak: VIOLATION substrates diverged:\nsim %+v\ntcp %+v\n", sim.Agg, tcp.Agg)
		}
		if *aggOnly {
			emit(sim.Agg)
		} else {
			emit(struct {
				Sim            *churn.Report `json:"sim"`
				TCP            *churn.Report `json:"tcp"`
				AggregateMatch bool          `json:"aggregateMatch"`
			}{sim, tcp, match})
		}
	default:
		fatal(fmt.Errorf("unknown substrate %q (want sim, tcp or both)", *substrate))
	}
	if !ok {
		os.Exit(1)
	}
}
