// Command ibgpcensus runs a parallel oscillation census over random
// route-reflection systems: a seed range is sharded across a worker pool,
// every seed's configuration is classified under each advertisement policy
// (exhaustively where the reachable state space fits the budget), and the
// results stream into a deterministic aggregate. The aggregate depends
// only on the job and the seed range — never on -shards, checkpoint
// timing, or kill/resume boundaries — so census numbers are reproducible
// byte for byte.
//
// Usage:
//
//	ibgpcensus [-job census|fig13|fuzz|chaos|lint|scale] [-shards N] [-workers N]
//	           [-seeds N] [-start S] [-params k=v,...] [-max-states N]
//	           [-schedules N] [-plans N] [-churn k=v,...] [-rounds N]
//	           [-mrai N] [-scale-plans N] [-checkpoint FILE] [-resume]
//	           [-json] [-progress DUR] [-timeout DUR]
//
// -shards parallelises across seeds; -workers parallelises the
// reachable-state search within each seed. Both are deterministic: the
// aggregate is a pure function of the job and the seed range.
//
// Examples:
//
//	ibgpcensus -seeds 500 -json                      # classic census
//	ibgpcensus -job fig13 -start 8000 -seeds 2000    # Figure 13 hunt
//	ibgpcensus -job chaos -seeds 200                 # fault-injection sweep
//	ibgpcensus -job lint -seeds 500 -max-states 60000   # lint precision/recall
//	ibgpcensus -job scale -seeds 8 -params pops=6,exits=6,prefixes=64   # sharded-core soak
//	ibgpcensus -seeds 10000 -checkpoint c.jsonl      # checkpointed...
//	ibgpcensus -seeds 10000 -checkpoint c.jsonl -resume   # ...and resumed
//
// -params overrides fields of the job's default family, e.g.
// "clusters=4,maxmed=2,exits=8" (census/fuzz),
// "clusters=4,twoclienton=0,dotted=0.5" (fig13), or
// "pops=4,exits=6,maxmed=3" (lint, over the topogen small family).
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"runtime"
	"syscall"

	"repro/internal/campaign"
	"repro/internal/churn"
	"repro/internal/cli"
	"repro/internal/protocol"
	"repro/internal/topogen"
	"repro/internal/workload"
)

func main() {
	var (
		jobName    = flag.String("job", "census", "job kind: census, fig13, fuzz, chaos, lint or scale")
		shards     = flag.Int("shards", 0, "worker count (0: GOMAXPROCS); never changes the results, only the wall-clock")
		seeds      = flag.Int("seeds", 256, "number of consecutive seeds")
		start      = flag.Int64("start", 1, "first seed")
		params     = flag.String("params", "", "family overrides, comma-separated key=value")
		maxStates  = flag.Int("max-states", 4000, "per-variant reachable-state budget for the census job (0: sampling only)")
		workers    = flag.Int("workers", 1, "goroutines per reachable-state search (0: GOMAXPROCS); deterministic — never changes the aggregate")
		schedules  = flag.Int("schedules", 4, "delay seeds per topology seed (fuzz job)")
		plans      = flag.Int("plans", 3, "fault plans per topology seed (chaos job)")
		churnSpec  = flag.String("churn", "", "churn workload overrides for the scale job, e.g. rate=40,flap=0.3 (seed and prefixes come from the campaign seed and the generated domain)")
		rounds     = flag.Int("rounds", 3, "churn rounds per seed (scale job)")
		mrai       = flag.Int64("mrai", 0, "per-session MRAI in virtual ticks (scale job; 0: no pacing)")
		scalePlans = flag.Int("scale-plans", 0, "fault plans per seed for the scale job's chaos variant (0: off)")
		checkpoint = flag.String("checkpoint", "", "JSONL checkpoint path")
		resume     = flag.Bool("resume", false, "resume from -checkpoint, running only missing seeds")
		jsonOut    = flag.Bool("json", false, "write the aggregate as indented JSON on stdout")
		progress   = flag.Duration("progress", 0, "progress report interval on stderr (0: off)")
		timeout    = flag.Duration("timeout", 0, "overall deadline (0: none)")
	)
	flag.Parse()

	var job campaign.Job
	switch *jobName {
	case "census":
		p, err := cli.ParseWorkloadParams(*params, workload.Default(3))
		if err != nil {
			fatal(err)
		}
		job = campaign.CensusJob{Params: p, MaxStates: *maxStates, Workers: exploreWorkers(*workers)}
	case "fig13":
		spec, err := cli.ParseCrossedSpec(*params, workload.CrossedSpec{
			Clusters: 4, TwoClientOn: 0, ASes: 2, MaxMED: 2, DottedProb: 0.5,
		})
		if err != nil {
			fatal(err)
		}
		job = campaign.Fig13Job{Spec: spec, Workers: exploreWorkers(*workers)}
	case "fuzz":
		p, err := cli.ParseWorkloadParams(*params, workload.Default(3))
		if err != nil {
			fatal(err)
		}
		job = campaign.FuzzJob{Params: p, Policy: protocol.Classic, Schedules: *schedules}
	case "chaos":
		p, err := cli.ParseWorkloadParams(*params, workload.Default(3))
		if err != nil {
			fatal(err)
		}
		job = campaign.ChaosJob{Params: p, Plans: *plans}
	case "lint":
		spec, err := cli.ParseTopogenSpec(*params, topogen.Small())
		if err != nil {
			fatal(err)
		}
		job = campaign.LintJob{Spec: spec, MaxStates: *maxStates, Workers: exploreWorkers(*workers)}
	case "scale":
		spec, err := cli.ParseTopogenSpec(*params, topogen.Small())
		if err != nil {
			fatal(err)
		}
		cs, err := cli.ParseChurnSpec(*churnSpec, churn.DefaultSpec())
		if err != nil {
			fatal(err)
		}
		job = campaign.ScaleJob{
			Spec: spec, Churn: cs, Rounds: *rounds, MRAI: *mrai,
			Workers: exploreWorkers(*workers), Plans: *scalePlans,
		}
	default:
		fatal(fmt.Errorf("unknown -job %q (want census, fig13, fuzz, chaos, lint or scale)", *jobName))
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	cfg := campaign.Config{
		Shards:     *shards,
		Start:      *start,
		Seeds:      *seeds,
		Checkpoint: *checkpoint,
		Resume:     *resume,
	}
	if *progress > 0 {
		cfg.ProgressEvery = *progress
		cfg.Progress = func(p campaign.ProgressReport) {
			fmt.Fprintln(os.Stderr, p)
		}
	}

	agg, err := campaign.Run(ctx, job, cfg)
	if err != nil {
		if agg != nil && *checkpoint != "" {
			fmt.Fprintf(os.Stderr, "ibgpcensus: interrupted after %d/%d seeds; resume with -resume -checkpoint %s\n",
				agg.Completed, *seeds, *checkpoint)
		}
		fatal(err)
	}
	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(agg); err != nil {
			fatal(err)
		}
		return
	}
	fmt.Print(agg)
}

// exploreWorkers resolves the -workers flag: 0 means one goroutine per
// available CPU.
func exploreWorkers(n int) int {
	if n == 0 {
		return runtime.GOMAXPROCS(0)
	}
	return n
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "ibgpcensus:", err)
	os.Exit(1)
}
