package main

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"io/fs"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// Finding is one diagnostic.
type Finding struct {
	Pos   token.Position
	Check string
	Msg   string
}

func (f Finding) String() string {
	return fmt.Sprintf("%s: [%s] %s", f.Pos, f.Check, f.Msg)
}

// trackedEnums names the iota enums whose switches must be exhaustive.
// These steer protocol behaviour: a silently unhandled variant means a
// policy or outcome falls through to another's logic.
var trackedEnums = map[string]bool{
	"Policy":        true,
	"SuccessorMode": true,
	"Outcome":       true,
}

// detPackages are the import-path suffixes of the packages whose
// determinism the paper's claims depend on (Lemma 7.4: the modified
// protocol reaches one unique outcome; the experiments assert byte-equal
// results across runs). Ranging over a Go map there introduces
// scheduler-visible nondeterminism, so it is banned outright — sort the
// keys first.
var detPackages = []string{
	"internal/protocol",
	"internal/explore",
	"internal/selection",
}

// mutatingPathSetMethods are the pointer-receiver mutators of bgp.PathSet.
// Calling one on a PathSet received *by value* mutates the bitset words
// shared with the caller (the slice header is copied, the backing array is
// not) — an aliasing bug, not a local change.
var mutatingPathSetMethods = map[string]bool{
	"Add":    true,
	"Remove": true,
	"Union":  true,
}

// hotkeyPackages are the import-path suffixes of the exploration hot path.
// State identity there must go through the binary codec (EncodeState words
// interned in the explore arena); building keys with fmt formatting is how
// the old per-state string allocation crept in, so Sprintf/Fprintf are
// banned outside String methods. Errorf and the Print family stay allowed
// — they never become keys.
var hotkeyPackages = []string{
	"internal/protocol",
	"internal/explore",
}

// hotkeyFuncs are the fmt formatters that produce or fill key material.
var hotkeyFuncs = map[string]bool{
	"Sprintf": true,
	"Fprintf": true,
}

// passRegistryPackages are the import-path suffixes of packages that keep
// a registry of named analysis passes (composite literals of type Pass
// with a Name field). Every registered name must appear in that package's
// own test files: the verdict-table tests pin each pass's behaviour, and a
// pass that no test ever names is a pass whose regressions go unnoticed.
var passRegistryPackages = []string{
	"internal/lint",
}

// pooledWirePackages are the import-path suffixes of the wire hot path:
// the substrates that serialise every routing message of a run. There the
// codec must be driven through wire.AppendUpdate / wire.Append into a
// reused or pooled buffer — wire.Encode allocates a fresh []byte per
// message, which is exactly the per-message garbage the zero-alloc wire
// path removed. Test files stay exempt: a one-shot Encode in a test is
// convenience, not a hot path.
var pooledWirePackages = []string{
	"internal/msgsim",
	"internal/speaker",
}

// freshBufWireFuncs are the wire codec entry points that allocate a fresh
// output buffer on every call.
var freshBufWireFuncs = map[string]bool{
	"Encode": true,
}

// globalRandFuncs are the top-level math/rand functions that draw from the
// shared, process-global source. Every random draw in internal/... must come
// from an explicitly seeded *rand.Rand (rand.New(rand.NewSource(seed))):
// census and experiment results are keyed by seed, and a single global draw
// makes them irreproducible. Constructors (New, NewSource, NewZipf) are the
// sanctioned way in and stay allowed.
var globalRandFuncs = map[string]bool{
	"Int": true, "Intn": true, "Int31": true, "Int31n": true,
	"Int63": true, "Int63n": true, "Uint32": true, "Uint64": true,
	"Float32": true, "Float64": true, "ExpFloat64": true, "NormFloat64": true,
	"Perm": true, "Shuffle": true, "Seed": true, "Read": true,
}

// pkg is one parsed directory of Go files.
type pkg struct {
	dir   string
	name  string // package name from the source
	files map[string]*ast.File
}

// enum is one tracked enum: the constants of a `type T int` iota block.
type enum struct {
	dir     string // declaring package directory
	pkgName string
	typ     string
	members []string
}

// analyzer runs the repo checks over a set of parsed packages.
type analyzer struct {
	fset     *token.FileSet
	pkgs     []*pkg
	enums    []enum
	findings []Finding
}

// loadDirs parses every .go file in the given directories (tests
// included; their determinism matters just as much). Directories with no
// Go files are skipped silently so tree walks stay simple.
func loadDirs(fset *token.FileSet, dirs []string) ([]*pkg, error) {
	var pkgs []*pkg
	for _, dir := range dirs {
		matches, err := filepath.Glob(filepath.Join(dir, "*.go"))
		if err != nil {
			return nil, err
		}
		if len(matches) == 0 {
			continue
		}
		sort.Strings(matches)
		p := &pkg{dir: dir, files: map[string]*ast.File{}}
		for _, path := range matches {
			file, err := parser.ParseFile(fset, path, nil, parser.ParseComments)
			if err != nil {
				return nil, err
			}
			p.files[path] = file
			if p.name == "" && !strings.HasSuffix(file.Name.Name, "_test") {
				p.name = file.Name.Name
			}
		}
		if p.name == "" {
			for _, f := range p.files {
				p.name = strings.TrimSuffix(f.Name.Name, "_test")
				break
			}
		}
		pkgs = append(pkgs, p)
	}
	return pkgs, nil
}

// expandPatterns resolves command-line arguments into directories: a
// trailing "/..." walks the tree (skipping .git, testdata and hidden
// directories), anything else is taken as a single directory.
func expandPatterns(args []string) ([]string, error) {
	var dirs []string
	seen := map[string]bool{}
	add := func(d string) {
		d = filepath.Clean(d)
		if !seen[d] {
			seen[d] = true
			dirs = append(dirs, d)
		}
	}
	for _, arg := range args {
		root, rec := strings.CutSuffix(arg, "/...")
		if root == "" {
			root = "."
		}
		if !rec {
			add(arg)
			continue
		}
		err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if !d.IsDir() {
				return nil
			}
			base := filepath.Base(path)
			if path != root && (base == "testdata" || strings.HasPrefix(base, ".") || strings.HasPrefix(base, "_")) {
				return filepath.SkipDir
			}
			add(path)
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	sort.Strings(dirs)
	return dirs, nil
}

// Analyze parses the directories and runs every check, returning findings
// sorted by position.
func Analyze(dirs []string) ([]Finding, error) {
	fset := token.NewFileSet()
	pkgs, err := loadDirs(fset, dirs)
	if err != nil {
		return nil, err
	}
	a := &analyzer{fset: fset, pkgs: pkgs}
	a.collectEnums()
	for _, p := range a.pkgs {
		det := inDetPackage(p.dir)
		paths := make([]string, 0, len(p.files))
		for path := range p.files {
			paths = append(paths, path)
		}
		sort.Strings(paths)
		internal := strings.Contains(filepath.ToSlash(p.dir)+"/", "internal/")
		hot := inHotkeyPackage(p.dir)
		for _, path := range paths {
			file := p.files[path]
			a.checkSwitches(p, file)
			a.checkPathSetMutation(file)
			a.checkEmptyInterface(file)
			if det {
				a.checkMapRange(file)
			}
			if internal {
				a.checkGlobalRand(file)
			}
			if hot && !strings.HasSuffix(path, "_test.go") {
				a.checkHotKey(file)
			}
			if inPooledWirePackage(p.dir) && !strings.HasSuffix(path, "_test.go") {
				a.checkWireEncode(file)
			}
		}
		if inPassRegistryPackage(p.dir) {
			a.checkPassCoverage(p)
		}
	}
	sort.Slice(a.findings, func(i, j int) bool {
		fi, fj := a.findings[i], a.findings[j]
		if fi.Pos.Filename != fj.Pos.Filename {
			return fi.Pos.Filename < fj.Pos.Filename
		}
		return fi.Pos.Line < fj.Pos.Line
	})
	return a.findings, nil
}

func inDetPackage(dir string) bool {
	d := filepath.ToSlash(dir)
	for _, suffix := range detPackages {
		if strings.HasSuffix(d, suffix) {
			return true
		}
	}
	return false
}

func inPassRegistryPackage(dir string) bool {
	d := filepath.ToSlash(dir)
	for _, suffix := range passRegistryPackages {
		if strings.HasSuffix(d, suffix) {
			return true
		}
	}
	return false
}

func inPooledWirePackage(dir string) bool {
	d := filepath.ToSlash(dir)
	for _, suffix := range pooledWirePackages {
		if strings.HasSuffix(d, suffix) {
			return true
		}
	}
	return false
}

func inHotkeyPackage(dir string) bool {
	d := filepath.ToSlash(dir)
	for _, suffix := range hotkeyPackages {
		if strings.HasSuffix(d, suffix) {
			return true
		}
	}
	return false
}

func (a *analyzer) report(pos token.Pos, check, format string, args ...any) {
	a.findings = append(a.findings, Finding{
		Pos:   a.fset.Position(pos),
		Check: check,
		Msg:   fmt.Sprintf(format, args...),
	})
}

// collectEnums finds `type T int` declarations for tracked names and the
// members of their iota const blocks, in every parsed package.
func (a *analyzer) collectEnums() {
	for _, p := range a.pkgs {
		declared := map[string]bool{}
		for _, file := range p.files {
			for _, decl := range file.Decls {
				gd, ok := decl.(*ast.GenDecl)
				if !ok || gd.Tok != token.TYPE {
					continue
				}
				for _, spec := range gd.Specs {
					ts := spec.(*ast.TypeSpec)
					if trackedEnums[ts.Name.Name] {
						declared[ts.Name.Name] = true
					}
				}
			}
		}
		if len(declared) == 0 {
			continue
		}
		members := map[string][]string{}
		for _, file := range p.files {
			for _, decl := range file.Decls {
				gd, ok := decl.(*ast.GenDecl)
				if !ok || gd.Tok != token.CONST {
					continue
				}
				// Track the running type of an iota block: a ValueSpec
				// with an explicit type sets it; one with values but no
				// type clears it; a bare continuation inherits it.
				cur := ""
				for _, spec := range gd.Specs {
					vs := spec.(*ast.ValueSpec)
					switch {
					case vs.Type != nil:
						if id, ok := vs.Type.(*ast.Ident); ok && declared[id.Name] {
							cur = id.Name
						} else {
							cur = ""
						}
					case len(vs.Values) > 0:
						cur = ""
					}
					if cur == "" {
						continue
					}
					for _, name := range vs.Names {
						if name.Name != "_" {
							members[cur] = append(members[cur], name.Name)
						}
					}
				}
			}
		}
		// Deterministic order for reporting.
		typs := make([]string, 0, len(members))
		for typ := range members {
			typs = append(typs, typ)
		}
		sort.Strings(typs)
		for _, typ := range typs {
			if len(members[typ]) > 1 {
				a.enums = append(a.enums, enum{dir: p.dir, pkgName: p.name, typ: typ, members: members[typ]})
			}
		}
	}
}

// checkSwitches flags tag switches that mention some members of a tracked
// enum but neither cover all of them nor declare a default clause.
func (a *analyzer) checkSwitches(p *pkg, file *ast.File) {
	ast.Inspect(file, func(n ast.Node) bool {
		sw, ok := n.(*ast.SwitchStmt)
		if !ok || sw.Tag == nil {
			return true
		}
		var caseNames []string
		hasDefault := false
		for _, stmt := range sw.Body.List {
			cc := stmt.(*ast.CaseClause)
			if cc.List == nil {
				hasDefault = true
				continue
			}
			for _, expr := range cc.List {
				switch e := expr.(type) {
				case *ast.Ident:
					caseNames = append(caseNames, e.Name)
				case *ast.SelectorExpr:
					if x, ok := e.X.(*ast.Ident); ok {
						caseNames = append(caseNames, x.Name+"."+e.Sel.Name)
					}
				}
			}
		}
		if hasDefault || len(caseNames) == 0 {
			return true
		}
		for _, en := range a.enums {
			// Members are referenced bare within the declaring package and
			// package-qualified elsewhere.
			qualify := ""
			if filepath.Clean(en.dir) != filepath.Clean(p.dir) {
				qualify = en.pkgName + "."
			}
			covered := map[string]bool{}
			for _, m := range en.members {
				for _, c := range caseNames {
					if c == qualify+m {
						covered[m] = true
					}
				}
			}
			if len(covered) == 0 || len(covered) == len(en.members) {
				continue
			}
			var missing []string
			for _, m := range en.members {
				if !covered[m] {
					missing = append(missing, m)
				}
			}
			a.report(sw.Pos(), "exhaustive-switch",
				"switch over %s.%s is missing cases %s and has no default clause",
				en.pkgName, en.typ, strings.Join(missing, ", "))
		}
		return true
	})
}

// checkMapRange flags `for ... range m` where m is a map declared in the
// enclosing function (parameter, make(map...), map literal, or var with a
// map type). The resolution is syntactic and function-local: that is the
// shape every nondeterministic iteration in this repo has taken, and it
// keeps the linter dependency-free (no go/types, no module loader).
func (a *analyzer) checkMapRange(file *ast.File) {
	for _, decl := range file.Decls {
		fd, ok := decl.(*ast.FuncDecl)
		if !ok || fd.Body == nil {
			continue
		}
		maps := map[string]bool{}
		collect := func(name string, typ ast.Expr) {
			if _, ok := typ.(*ast.MapType); ok && name != "_" {
				maps[name] = true
			}
		}
		if fd.Type.Params != nil {
			for _, f := range fd.Type.Params.List {
				for _, n := range f.Names {
					collect(n.Name, f.Type)
				}
			}
		}
		// First sweep: find map-typed declarations anywhere in the body
		// (including inside closures — ranges are matched per name, and a
		// shadowing non-map redeclaration is not expected in this repo).
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			switch st := n.(type) {
			case *ast.AssignStmt:
				for i, lhs := range st.Lhs {
					id, ok := lhs.(*ast.Ident)
					if !ok || i >= len(st.Rhs) {
						continue
					}
					switch rhs := st.Rhs[i].(type) {
					case *ast.CallExpr:
						if fun, ok := rhs.Fun.(*ast.Ident); ok && fun.Name == "make" && len(rhs.Args) > 0 {
							collect(id.Name, rhs.Args[0])
						}
					case *ast.CompositeLit:
						if rhs.Type != nil {
							collect(id.Name, rhs.Type)
						}
					}
				}
			case *ast.DeclStmt:
				if gd, ok := st.Decl.(*ast.GenDecl); ok && gd.Tok == token.VAR {
					for _, spec := range gd.Specs {
						vs := spec.(*ast.ValueSpec)
						if vs.Type != nil {
							for _, n := range vs.Names {
								collect(n.Name, vs.Type)
							}
						}
					}
				}
			case *ast.FuncLit:
				if st.Type.Params != nil {
					for _, f := range st.Type.Params.List {
						for _, n := range f.Names {
							collect(n.Name, f.Type)
						}
					}
				}
			}
			return true
		})
		if len(maps) == 0 {
			continue
		}
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			rs, ok := n.(*ast.RangeStmt)
			if !ok {
				return true
			}
			if id, ok := rs.X.(*ast.Ident); ok && maps[id.Name] {
				a.report(rs.Pos(), "map-range",
					"range over map %s in a determinism-critical package: iteration order is "+
						"nondeterministic (Lemma 7.4 claims unique outcomes) — sort the keys first, or use clear()",
					id.Name)
			}
			return true
		})
	}
}

// checkGlobalRand flags calls of top-level math/rand functions in
// internal packages: they draw from the process-global source, so results
// stop being a pure function of the seed. The import's local name is
// tracked so aliased imports don't dodge the check.
func (a *analyzer) checkGlobalRand(file *ast.File) {
	randName := ""
	for _, imp := range file.Imports {
		if strings.Trim(imp.Path.Value, `"`) != "math/rand" {
			continue
		}
		randName = "rand"
		if imp.Name != nil {
			randName = imp.Name.Name
		}
	}
	if randName == "" || randName == "_" || randName == "." {
		return
	}
	ast.Inspect(file, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok || !globalRandFuncs[sel.Sel.Name] {
			return true
		}
		if id, ok := sel.X.(*ast.Ident); ok && id.Name == randName && id.Obj == nil {
			a.report(call.Pos(), "global-rand",
				"%s.%s draws from the process-global math/rand source: results are no longer a pure "+
					"function of the seed — use rand.New(rand.NewSource(seed)) instead", randName, sel.Sel.Name)
		}
		return true
	})
}

// checkHotKey flags fmt.Sprintf/fmt.Fprintf in the state hot path
// (internal/protocol, internal/explore, non-test files): formatted strings
// there are almost always state keys, and string keys are exactly what the
// interned binary arena replaced. String methods are exempt — rendering
// for humans is their job. The import's local name is tracked so aliased
// imports don't dodge the check.
func (a *analyzer) checkHotKey(file *ast.File) {
	fmtName := ""
	for _, imp := range file.Imports {
		if strings.Trim(imp.Path.Value, `"`) != "fmt" {
			continue
		}
		fmtName = "fmt"
		if imp.Name != nil {
			fmtName = imp.Name.Name
		}
	}
	if fmtName == "" || fmtName == "_" || fmtName == "." {
		return
	}
	for _, decl := range file.Decls {
		fd, ok := decl.(*ast.FuncDecl)
		if !ok || fd.Body == nil || fd.Name.Name == "String" {
			continue
		}
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok || !hotkeyFuncs[sel.Sel.Name] {
				return true
			}
			if id, ok := sel.X.(*ast.Ident); ok && id.Name == fmtName && id.Obj == nil {
				a.report(call.Pos(), "hotkey",
					"%s.%s in the exploration hot path: string-built state keys were replaced by the "+
						"interned binary arena (EncodeState words) — keep key construction binary, or move "+
						"rendering into a String method", fmtName, sel.Sel.Name)
			}
			return true
		})
	}
}

// checkWireEncode flags calls of fresh-buffer wire codec functions in the
// wire hot path (internal/msgsim, internal/speaker, non-test files):
// wire.Encode allocates a new []byte per message, and a substrate that
// serialises every routing message of a run must instead reuse buffers via
// wire.AppendUpdate / wire.Append (freelist on msgsim, sync.Pool on the
// speaker). The import's local name is tracked so aliased imports don't
// dodge the check.
func (a *analyzer) checkWireEncode(file *ast.File) {
	wireName := ""
	for _, imp := range file.Imports {
		if !strings.HasSuffix(strings.Trim(imp.Path.Value, `"`), "internal/wire") {
			continue
		}
		wireName = "wire"
		if imp.Name != nil {
			wireName = imp.Name.Name
		}
	}
	if wireName == "" || wireName == "_" || wireName == "." {
		return
	}
	ast.Inspect(file, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok || !freshBufWireFuncs[sel.Sel.Name] {
			return true
		}
		if id, ok := sel.X.(*ast.Ident); ok && id.Name == wireName && id.Obj == nil {
			a.report(call.Pos(), "wire-encode",
				"%s.%s allocates a fresh buffer per message in the wire hot path — "+
					"use %s.AppendUpdate into a pooled or reused buffer instead", wireName, sel.Sel.Name, wireName)
		}
		return true
	})
}

// checkEmptyInterface flags the pre-generics spelling interface{}: the
// repo writes the empty interface as any (Go 1.18+), and mixing the two
// spellings makes grep-ability and gofmt churn worse. The check is purely
// syntactic — `any` parses as an identifier, so it is never flagged.
func (a *analyzer) checkEmptyInterface(file *ast.File) {
	ast.Inspect(file, func(n ast.Node) bool {
		it, ok := n.(*ast.InterfaceType)
		if !ok || it.Methods == nil || len(it.Methods.List) > 0 {
			return true
		}
		a.report(it.Pos(), "empty-interface",
			"interface{} spelled out: write any instead (the repo is Go 1.18+ throughout)")
		return true
	})
}

// checkPathSetMutation flags calls of a mutating PathSet method on a
// parameter received by value: the copy shares the bitset's backing array
// with the caller, so the "local" mutation aliases the caller's set.
func (a *analyzer) checkPathSetMutation(file *ast.File) {
	isPathSet := func(typ ast.Expr) bool {
		switch t := typ.(type) {
		case *ast.Ident:
			return t.Name == "PathSet"
		case *ast.SelectorExpr:
			return t.Sel.Name == "PathSet"
		}
		return false
	}
	check := func(params *ast.FieldList, body *ast.BlockStmt) {
		if params == nil || body == nil {
			return
		}
		byValue := map[string]bool{}
		for _, f := range params.List {
			if isPathSet(f.Type) {
				for _, n := range f.Names {
					byValue[n.Name] = true
				}
			}
		}
		if len(byValue) == 0 {
			return
		}
		ast.Inspect(body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok || !mutatingPathSetMethods[sel.Sel.Name] {
				return true
			}
			if id, ok := sel.X.(*ast.Ident); ok && byValue[id.Name] {
				a.report(call.Pos(), "pathset-mutation",
					"%s.%s mutates a PathSet received by value: the bitset words are shared with the caller — "+
						"take *PathSet or Clone() first", id.Name, sel.Sel.Name)
			}
			return true
		})
	}
	ast.Inspect(file, func(n ast.Node) bool {
		switch fn := n.(type) {
		case *ast.FuncDecl:
			check(fn.Type.Params, fn.Body)
		case *ast.FuncLit:
			check(fn.Type.Params, fn.Body)
		}
		return true
	})
}

// checkPassCoverage runs on pass-registry packages: every Pass composite
// literal in non-test files must have its Name string appear in some test
// file of the same package (the verdict-table tests address passes by
// name). Registering a pass without ever naming it in a test means its
// verdict contribution is untested.
func (a *analyzer) checkPassCoverage(p *pkg) {
	isPassType := func(typ ast.Expr) bool {
		switch t := typ.(type) {
		case *ast.Ident:
			return t.Name == "Pass"
		case *ast.SelectorExpr:
			return t.Sel.Name == "Pass"
		}
		return false
	}
	type namedPass struct {
		name string
		pos  token.Pos
	}
	var passes []namedPass
	var testStrings []string
	paths := make([]string, 0, len(p.files))
	for path := range p.files {
		paths = append(paths, path)
	}
	sort.Strings(paths)
	for _, path := range paths {
		file := p.files[path]
		if strings.HasSuffix(path, "_test.go") {
			ast.Inspect(file, func(n ast.Node) bool {
				if lit, ok := n.(*ast.BasicLit); ok && lit.Kind == token.STRING {
					if s, err := strconv.Unquote(lit.Value); err == nil {
						testStrings = append(testStrings, s)
					}
				}
				return true
			})
			continue
		}
		collect := func(cl *ast.CompositeLit) {
			for _, elt := range cl.Elts {
				kv, ok := elt.(*ast.KeyValueExpr)
				if !ok {
					continue
				}
				key, ok := kv.Key.(*ast.Ident)
				if !ok || key.Name != "Name" {
					continue
				}
				if lit, ok := kv.Value.(*ast.BasicLit); ok && lit.Kind == token.STRING {
					if s, err := strconv.Unquote(lit.Value); err == nil && s != "" {
						passes = append(passes, namedPass{name: s, pos: lit.Pos()})
					}
				}
			}
		}
		ast.Inspect(file, func(n ast.Node) bool {
			cl, ok := n.(*ast.CompositeLit)
			if !ok || cl.Type == nil {
				return true
			}
			switch typ := cl.Type.(type) {
			case *ast.ArrayType:
				// []Pass{{...}, ...}: the element literals elide the type.
				if !isPassType(typ.Elt) {
					return true
				}
				for _, elt := range cl.Elts {
					if inner, ok := elt.(*ast.CompositeLit); ok && inner.Type == nil {
						collect(inner)
					}
				}
			default:
				if isPassType(cl.Type) {
					collect(cl)
				}
			}
			return true
		})
	}
	for _, np := range passes {
		covered := false
		for _, s := range testStrings {
			if strings.Contains(s, np.name) {
				covered = true
				break
			}
		}
		if !covered {
			a.report(np.pos, "pass-coverage",
				"lint pass %q is registered but never named in this package's tests: "+
					"add it to the verdict-table tests so its findings are pinned", np.name)
		}
	}
}
