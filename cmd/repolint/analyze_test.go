package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// writeTree lays out a fake module in a temp dir: path -> source.
func writeTree(t *testing.T, files map[string]string) string {
	t.Helper()
	root := t.TempDir()
	for path, src := range files {
		full := filepath.Join(root, filepath.FromSlash(path))
		if err := os.MkdirAll(filepath.Dir(full), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(full, []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return root
}

func analyzeTree(t *testing.T, files map[string]string) []Finding {
	t.Helper()
	root := writeTree(t, files)
	dirs, err := expandPatterns([]string{root + "/..."})
	if err != nil {
		t.Fatal(err)
	}
	findings, err := Analyze(dirs)
	if err != nil {
		t.Fatal(err)
	}
	return findings
}

func hasFinding(findings []Finding, check, msgPart string) bool {
	for _, f := range findings {
		if f.Check == check && strings.Contains(f.Msg, msgPart) {
			return true
		}
	}
	return false
}

const enumDecl = `package protocol

type Policy int

const (
	Classic Policy = iota
	Walton
	Modified
	Adaptive
)
`

// TestSeededNonExhaustiveSwitch proves the analyzer catches a switch over
// Policy that covers some members, misses others, and has no default —
// both in the declaring package (bare names) and from another package
// (qualified names).
func TestSeededNonExhaustiveSwitch(t *testing.T) {
	findings := analyzeTree(t, map[string]string{
		"internal/protocol/enum.go": enumDecl,
		"internal/protocol/use.go": `package protocol

func describe(p Policy) string {
	switch p {
	case Classic:
		return "classic"
	case Walton:
		return "walton"
	}
	return ""
}
`,
		"cmd/tool/main.go": `package main

import "example/internal/protocol"

func pick(p protocol.Policy) int {
	switch p {
	case protocol.Classic:
		return 1
	case protocol.Modified:
		return 2
	}
	return 0
}
`,
	})
	if !hasFinding(findings, "exhaustive-switch", "missing cases Modified, Adaptive") {
		t.Errorf("same-package non-exhaustive switch not flagged; findings: %v", findings)
	}
	if !hasFinding(findings, "exhaustive-switch", "missing cases Walton, Adaptive") {
		t.Errorf("cross-package non-exhaustive switch not flagged; findings: %v", findings)
	}
}

// TestExhaustiveOrDefaultedSwitchesPass proves full coverage and default
// clauses both silence the check, and that switches over untracked values
// are ignored.
func TestExhaustiveOrDefaultedSwitchesPass(t *testing.T) {
	findings := analyzeTree(t, map[string]string{
		"internal/protocol/enum.go": enumDecl,
		"internal/protocol/ok.go": `package protocol

func full(p Policy) int {
	switch p {
	case Classic:
		return 0
	case Walton:
		return 1
	case Modified:
		return 2
	case Adaptive:
		return 3
	}
	return -1
}

func defaulted(p Policy) int {
	switch p {
	case Classic:
		return 0
	default:
		return -1
	}
}

func untracked(s string) int {
	switch s {
	case "a":
		return 0
	case "b":
		return 1
	}
	return -1
}
`,
	})
	for _, f := range findings {
		if f.Check == "exhaustive-switch" {
			t.Errorf("unexpected finding: %v", f)
		}
	}
}

// TestSeededMapRange proves map iteration is flagged inside a
// determinism-critical package — for parameters, make(), literals and var
// declarations — and NOT flagged in other packages or for slices.
func TestSeededMapRange(t *testing.T) {
	findings := analyzeTree(t, map[string]string{
		"internal/protocol/walk.go": `package protocol

func walkParam(m map[string]int) (sum int) {
	for _, v := range m {
		sum += v
	}
	return
}

func walkLocal() []string {
	seen := make(map[string]bool)
	seen["x"] = true
	var out []string
	for k := range seen {
		out = append(out, k)
	}
	return out
}

func walkSlice(xs []int) (sum int) {
	for _, v := range xs {
		sum += v
	}
	return
}
`,
		"internal/report/fine.go": `package report

func walk(m map[string]int) (sum int) {
	for _, v := range m {
		sum += v
	}
	return
}
`,
	})
	if !hasFinding(findings, "map-range", "map m") {
		t.Errorf("map-range over parameter not flagged; findings: %v", findings)
	}
	if !hasFinding(findings, "map-range", "map seen") {
		t.Errorf("map-range over make()d local not flagged; findings: %v", findings)
	}
	for _, f := range findings {
		if f.Check == "map-range" && strings.Contains(f.Pos.Filename, "fine.go") {
			t.Errorf("map-range flagged outside the determinism-critical packages: %v", f)
		}
		if f.Check == "map-range" && strings.Contains(f.Msg, "xs") {
			t.Errorf("slice range misflagged as map range: %v", f)
		}
	}
}

// TestSeededPathSetMutation proves mutating a by-value PathSet parameter is
// flagged while pointer receivers and read-only calls are not.
func TestSeededPathSetMutation(t *testing.T) {
	findings := analyzeTree(t, map[string]string{
		"internal/bgp/bgp.go": `package bgp

type PathSet struct{ words []uint64 }

func (s *PathSet) Add(i int)          {}
func (s *PathSet) Remove(i int)       {}
func (s *PathSet) Union(o PathSet)    {}
func (s PathSet) Contains(i int) bool { return false }
`,
		"internal/rib/rib.go": `package rib

import "example/internal/bgp"

func drop(set bgp.PathSet, i int) {
	set.Remove(i)
}

func peek(set bgp.PathSet, i int) bool {
	return set.Contains(i)
}

func viaPointer(set *bgp.PathSet, i int) {
	set.Add(i)
}
`,
	})
	if !hasFinding(findings, "pathset-mutation", "set.Remove") {
		t.Errorf("by-value PathSet mutation not flagged; findings: %v", findings)
	}
	for _, f := range findings {
		if f.Check != "pathset-mutation" {
			continue
		}
		if strings.Contains(f.Msg, "Contains") || strings.Contains(f.Msg, "viaPointer") {
			t.Errorf("false positive: %v", f)
		}
	}
	// Union on *PathSet receiver body is fine; make sure only the one
	// by-value site fired.
	count := 0
	for _, f := range findings {
		if f.Check == "pathset-mutation" {
			count++
		}
	}
	if count != 1 {
		t.Errorf("want exactly 1 pathset-mutation finding, got %d: %v", count, findings)
	}
}

// TestSeededHotKey proves fmt.Sprintf/Fprintf are flagged in the hot-path
// packages (internal/protocol, internal/explore) — including under an
// import alias — while String methods, fmt.Errorf, test files and other
// packages stay clean.
func TestSeededHotKey(t *testing.T) {
	findings := analyzeTree(t, map[string]string{
		"internal/protocol/key.go": `package protocol

import "fmt"

type Engine struct{ n int }

func (e *Engine) StateKey() string {
	return fmt.Sprintf("%d", e.n)
}

func (e *Engine) String() string {
	return fmt.Sprintf("engine(%d)", e.n)
}

func (e *Engine) check() error {
	return fmt.Errorf("bad engine %d", e.n)
}
`,
		"internal/explore/key.go": `package explore

import (
	"strings"

	f "fmt"
)

func key(xs []int) string {
	var b strings.Builder
	for _, x := range xs {
		f.Fprintf(&b, "%d;", x)
	}
	return b.String()
}
`,
		"internal/explore/key_test.go": `package explore

import "fmt"

func testKey(x int) string {
	return fmt.Sprintf("%d", x)
}
`,
		"internal/trace/render.go": `package trace

import "fmt"

func render(x int) string {
	return fmt.Sprintf("%d", x)
}
`,
	})
	if !hasFinding(findings, "hotkey", "fmt.Sprintf") {
		t.Errorf("Sprintf key in internal/protocol not flagged; findings: %v", findings)
	}
	if !hasFinding(findings, "hotkey", "f.Fprintf") {
		t.Errorf("aliased Fprintf key in internal/explore not flagged; findings: %v", findings)
	}
	for _, f := range findings {
		if f.Check != "hotkey" {
			continue
		}
		if strings.Contains(f.Pos.Filename, "_test.go") {
			t.Errorf("hotkey flagged in a test file: %v", f)
		}
		if strings.Contains(f.Pos.Filename, "render.go") {
			t.Errorf("hotkey flagged outside the hot-path packages: %v", f)
		}
	}
	// Exactly the two genuine key constructions: the String method and
	// Errorf must not fire.
	count := 0
	for _, f := range findings {
		if f.Check == "hotkey" {
			count++
		}
	}
	if count != 2 {
		t.Errorf("want exactly 2 hotkey findings, got %d: %v", count, findings)
	}
}

// TestSeededEmptyInterface proves interface{} is flagged repo-wide — in
// parameters, results and composite types — while any and non-empty
// interfaces are not.
func TestSeededEmptyInterface(t *testing.T) {
	findings := analyzeTree(t, map[string]string{
		"internal/heap/heap.go": `package heap

type queue []any

func (q *queue) Push(x interface{}) { *q = append(*q, x) }

func (q *queue) Pop() interface{} {
	old := *q
	x := old[len(old)-1]
	*q = old[:len(old)-1]
	return x
}

func modern(args ...any) []any { return args }

type Stringer interface {
	String() string
}
`,
		"cmd/tool/main.go": `package main

func main() {
	var boxes []map[string]interface{}
	_ = boxes
}
`,
	})
	count := 0
	for _, f := range findings {
		if f.Check == "empty-interface" {
			count++
		}
	}
	if count != 3 {
		t.Errorf("want exactly 3 empty-interface findings (Push, Pop, main), got %d: %v", count, findings)
	}
	for _, f := range findings {
		if f.Check == "empty-interface" && strings.Contains(f.Msg, "Stringer") {
			t.Errorf("non-empty interface misflagged: %v", f)
		}
	}
}

// TestRepoIsClean runs the analyzer over the actual repository — the same
// invocation CI uses — and requires zero findings.
func TestRepoIsClean(t *testing.T) {
	dirs, err := expandPatterns([]string{filepath.Join("..", "..") + "/..."})
	if err != nil {
		t.Fatal(err)
	}
	findings, err := Analyze(dirs)
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range findings {
		t.Errorf("%v", f)
	}
}

// TestSeededGlobalRand proves top-level math/rand calls are flagged inside
// internal packages — including under an import alias — while explicitly
// seeded sources, constructor calls, shadowing locals and non-internal
// packages stay clean.
func TestSeededGlobalRand(t *testing.T) {
	findings := analyzeTree(t, map[string]string{
		"internal/foo/foo.go": `package foo

import "math/rand"

func draw() int {
	return rand.Intn(10)
}

func seeded(seed int64) int {
	r := rand.New(rand.NewSource(seed))
	return r.Intn(10)
}
`,
		"internal/bar/bar.go": `package bar

import mrand "math/rand"

func shuffle(xs []int) {
	mrand.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] })
}
`,
		"internal/baz/baz.go": `package baz

import "math/rand"

type fake struct{}

func (fake) Intn(n int) int { return 0 }

func local(seed int64) int {
	rng := rand.New(rand.NewSource(seed))
	var rand fake
	_ = rng
	return rand.Intn(3)
}
`,
		"cmd/tool/main.go": `package main

import "math/rand"

func main() {
	_ = rand.Intn(10)
}
`,
	})
	if !hasFinding(findings, "global-rand", "rand.Intn") {
		t.Errorf("global rand.Intn in internal package not flagged; findings: %v", findings)
	}
	if !hasFinding(findings, "global-rand", "mrand.Shuffle") {
		t.Errorf("aliased global rand call not flagged; findings: %v", findings)
	}
	for _, f := range findings {
		if f.Check != "global-rand" {
			continue
		}
		if strings.Contains(f.Pos.Filename, "main.go") {
			t.Errorf("global-rand flagged outside internal/: %v", f)
		}
		if strings.Contains(f.Pos.Filename, "baz.go") {
			t.Errorf("shadowing local misflagged as global rand: %v", f)
		}
	}
	// Constructor calls (rand.New, rand.NewSource) and seeded-source draws
	// must not fire: exactly the two genuine global draws above.
	count := 0
	for _, f := range findings {
		if f.Check == "global-rand" {
			count++
		}
	}
	if count != 2 {
		t.Errorf("want exactly 2 global-rand findings, got %d: %v", count, findings)
	}
}

// TestSeededWireEncode proves the wire-encode check flags fresh-buffer
// wire.Encode calls in the wire hot-path packages (including aliased
// imports), while leaving test files, other packages, the pooled
// AppendUpdate entry point, and locally-shadowed identifiers alone.
func TestSeededWireEncode(t *testing.T) {
	findings := analyzeTree(t, map[string]string{
		"internal/msgsim/sim.go": `package msgsim

import "repro/internal/wire"

func send(u *wire.Update) ([]byte, error) {
	return wire.Encode(u)
}

func sendPooled(buf []byte, u *wire.Update) ([]byte, error) {
	return wire.AppendUpdate(buf, u)
}
`,
		"internal/speaker/out.go": `package speaker

import w "repro/internal/wire"

func serialize(u *w.Update) ([]byte, error) {
	return w.Encode(u)
}
`,
		"internal/speaker/out_test.go": `package speaker

import "repro/internal/wire"

func encodeForTest(u *wire.Update) ([]byte, error) {
	return wire.Encode(u)
}
`,
		"internal/msgsim/shadow.go": `package msgsim

type codec struct{}

func (codec) Encode(u any) ([]byte, error) { return nil, nil }

func local(u any) ([]byte, error) {
	var wire codec
	return wire.Encode(u)
}
`,
		"internal/churn/soak.go": `package churn

import "repro/internal/wire"

func snapshot(u *wire.Update) ([]byte, error) {
	return wire.Encode(u)
}
`,
	})
	if !hasFinding(findings, "wire-encode", "wire.Encode") {
		t.Errorf("fresh-buffer wire.Encode in internal/msgsim not flagged; findings: %v", findings)
	}
	if !hasFinding(findings, "wire-encode", "w.Encode") {
		t.Errorf("aliased wire.Encode in internal/speaker not flagged; findings: %v", findings)
	}
	count := 0
	for _, f := range findings {
		if f.Check == "wire-encode" {
			count++
			if strings.HasSuffix(f.Pos.Filename, "_test.go") {
				t.Errorf("wire-encode flagged a test file: %v", f)
			}
			if strings.Contains(f.Pos.Filename, "churn") {
				t.Errorf("wire-encode flagged a package outside the wire hot path: %v", f)
			}
			if strings.Contains(f.Pos.Filename, "shadow") {
				t.Errorf("wire-encode flagged a locally-shadowed identifier: %v", f)
			}
			if strings.Contains(f.Msg, "AppendUpdate(") {
				t.Errorf("wire-encode flagged the pooled AppendUpdate entry point: %v", f)
			}
		}
	}
	if count != 2 {
		t.Errorf("want exactly 2 wire-encode findings, got %d: %v", count, findings)
	}
}

// TestSeededPassCoverage proves the pass-coverage check fires for a lint
// pass registered in non-test code but never named in the package's own
// tests, stays quiet for covered passes (including names embedded inside
// longer test strings), and ignores Pass literals outside the registry
// packages.
func TestSeededPassCoverage(t *testing.T) {
	findings := analyzeTree(t, map[string]string{
		"internal/lint/lint.go": `package lint

type Pass struct {
	Name string
	Doc  string
}

func passes() []Pass {
	return []Pass{
		{Name: "covered-pass", Doc: "named directly in a test"},
		{Name: "embedded-pass", Doc: "named inside a longer test string"},
		{Name: "orphan-pass", Doc: "never mentioned by any test"},
	}
}
`,
		"internal/lint/lint_test.go": `package lint

import "testing"

func TestVerdicts(t *testing.T) {
	want := "covered-pass"
	msg := "expected an embedded-pass finding here"
	_, _ = want, msg
}
`,
		"internal/other/other.go": `package other

type Pass struct{ Name string }

var p = Pass{Name: "unregistered-package-pass"}
`,
	})
	if !hasFinding(findings, "pass-coverage", `"orphan-pass"`) {
		t.Errorf("untested lint pass not flagged; findings: %v", findings)
	}
	for _, f := range findings {
		if f.Check != "pass-coverage" {
			continue
		}
		for _, ok := range []string{"covered-pass", "embedded-pass", "unregistered-package-pass"} {
			if strings.Contains(f.Msg, ok) {
				t.Errorf("pass-coverage misfired on %s: %v", ok, f)
			}
		}
	}
}
