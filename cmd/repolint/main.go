// Command repolint is this repository's own correctness linter. It runs
// six purely syntactic go/ast checks that encode invariants the paper
// reproduction depends on:
//
//   - exhaustive-switch: a switch over one of the behaviour-steering enums
//     (protocol.Policy, explore.SuccessorMode, protocol.Outcome) must
//     either cover every member or carry a default clause. A silently
//     unhandled Policy means one policy runs another's logic.
//
//   - map-range: inside internal/protocol, internal/explore and
//     internal/selection, ranging over a Go map is banned — iteration
//     order is nondeterministic and those packages' results are asserted
//     to be bit-identical across runs (Lemma 7.4 uniqueness, the
//     experiment tables). Sort the keys, or use clear().
//
//   - pathset-mutation: calling Add/Remove/Union on a bgp.PathSet
//     received by value mutates the caller's bitset through the shared
//     backing array. Take *PathSet, or Clone() first.
//
//   - global-rand: inside internal/..., calling a top-level math/rand
//     function (rand.Intn, rand.Float64, rand.Shuffle, ...) is banned —
//     those draw from the process-global source, so generated systems and
//     census aggregates stop being pure functions of their seed. Build an
//     explicit source with rand.New(rand.NewSource(seed)) instead (the
//     constructors New, NewSource and NewZipf remain allowed).
//
//   - hotkey: inside internal/protocol and internal/explore (non-test
//     files), fmt.Sprintf and fmt.Fprintf are banned outside String
//     methods. Formatted strings in those packages are almost always state
//     keys, and string state keys are exactly the per-state allocation the
//     interned binary arena (Engine.EncodeState + explore's arena)
//     replaced. fmt.Errorf and the Print family stay allowed.
//
//   - empty-interface: the pre-generics spelling interface{} is banned
//     repo-wide in favour of any (Go 1.18+).
//
// Usage:
//
//	repolint ./...        # lint the whole module
//	repolint ./internal/protocol ./cmd/ibgpsim
//
// Findings print as "file:line: [check] message"; the exit status is 1 if
// any finding is reported, 2 on usage or parse errors.
package main

import (
	"fmt"
	"os"
)

func main() {
	args := os.Args[1:]
	if len(args) == 0 {
		fmt.Fprintln(os.Stderr, "usage: repolint ./... | dir ...")
		os.Exit(2)
	}
	dirs, err := expandPatterns(args)
	if err != nil {
		fmt.Fprintln(os.Stderr, "repolint:", err)
		os.Exit(2)
	}
	findings, err := Analyze(dirs)
	if err != nil {
		fmt.Fprintln(os.Stderr, "repolint:", err)
		os.Exit(2)
	}
	for _, f := range findings {
		fmt.Println(f)
	}
	if len(findings) > 0 {
		os.Exit(1)
	}
}
