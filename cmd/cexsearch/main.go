// Command cexsearch searches random configuration families for instances
// separating the protocols — in particular the Figure 13 property: a
// MED-induced persistent oscillation that survives the Walton et al. fix
// while the paper's modified protocol converges. The pinned Fig13 instance
// in internal/figures was produced by this tool (crossed family, seed
// 8905) and then exhaustively verified.
//
// Usage:
//
//	cexsearch [-clusters N] [-two-client-on I] [-ases N] [-max-med N]
//	          [-dotted P] [-start SEED] [-max N] [-exhaustive BUDGET] [-out FILE]
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/topology"
	"repro/internal/workload"
)

func main() {
	var (
		clusters   = flag.Int("clusters", 4, "number of clusters")
		twoClient  = flag.Int("two-client-on", 0, "cluster index that gets a second client (-1: none)")
		ases       = flag.Int("ases", 2, "number of neighbouring ASes")
		maxMED     = flag.Int("max-med", 2, "maximum MED value")
		dotted     = flag.Float64("dotted", 0.5, "dotted-link probability")
		start      = flag.Int64("start", 1, "first seed")
		max        = flag.Int("max", 20000, "seeds to try")
		exhaustive = flag.Int("exhaustive", 3000000, "state budget for the exhaustive verification of a hit (0 to skip)")
		out        = flag.String("out", "", "write the found topology JSON here")
	)
	flag.Parse()

	spec := workload.CrossedSpec{
		Clusters:    *clusters,
		TwoClientOn: *twoClient,
		ASes:        *ases,
		MaxMED:      *maxMED,
		DottedProb:  *dotted,
	}
	fmt.Printf("searching crossed family %+v from seed %d (%d samples)\n", spec, *start, *max)
	for i := 0; i < *max; i++ {
		seed := *start + int64(i)
		sys, err := workload.SampleCrossed(spec, seed)
		if err != nil {
			continue
		}
		v := workload.Classify(sys, 0)
		if !v.IsFig13Like() {
			continue
		}
		fmt.Printf("hit at seed %d: %+v\n", seed, v)
		if *exhaustive > 0 {
			v2 := workload.Classify(sys, *exhaustive)
			fmt.Printf("exhaustive verification: %+v\n", v2)
			if !v2.IsFig13Like() || !v2.Exhaustive {
				fmt.Println("exhaustive verification failed or truncated; continuing search")
				continue
			}
		}
		if *out != "" {
			w, err := os.Create(*out)
			if err != nil {
				fmt.Fprintln(os.Stderr, "cexsearch:", err)
				os.Exit(1)
			}
			topology.Save(w, sys)
			w.Close()
			fmt.Printf("topology written to %s\n", *out)
		} else {
			topology.Save(os.Stdout, sys)
		}
		return
	}
	fmt.Println("no counterexample found in the sampled range")
	os.Exit(1)
}
