// Command experiments reproduces every evaluation artifact of the paper —
// the behaviour of each figure and the complexity result — and prints the
// paper-claim vs. measured table that EXPERIMENTS.md records.
//
// Usage:
//
//	experiments [-exhaustive] [-seeds N] [-markdown] [-only E1,E8]
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/experiments"
)

func main() {
	var (
		exhaustive = flag.Bool("exhaustive", false, "run the expensive exhaustive proofs (notably on Figure 13)")
		seeds      = flag.Int("seeds", 8, "random schedules / delay seeds per experiment")
		markdown   = flag.Bool("markdown", false, "emit the EXPERIMENTS.md body")
		only       = flag.String("only", "", "comma-separated experiment ids to run (default all)")
	)
	flag.Parse()

	opts := experiments.Options{Exhaustive: *exhaustive, Seeds: *seeds}
	all := map[string]func(experiments.Options) experiments.Report{
		"E1": experiments.E1Fig1a, "E2": experiments.E2Fig1b,
		"E3": experiments.E3Fig2, "E4": experiments.E4Fig3,
		"E5": experiments.E5VariableGadget, "E6": experiments.E6ClauseGadget,
		"E7": experiments.E7Reduction, "E8": experiments.E8Walton,
		"E9": experiments.E9Loop, "E10": experiments.E10Determinism,
		"E11": experiments.E11Overhead, "E12": experiments.E12Flush,
		"E13": experiments.E13LoopFree, "E14": experiments.E14Fig12, "E15": experiments.E15Adaptive,
		"E16": experiments.E16Confederation, "E17": experiments.E17DeepHierarchy,
		"E18": experiments.E18SyncConvergence, "E19": experiments.E19MultiPrefix,
		"E20": experiments.E20MetricAdjustment, "E21": experiments.E21EBGPChurn,
		"E22": experiments.E22MEDPrevalence,
		"E23": experiments.E23Census,
	}

	var reports []experiments.Report
	if *only != "" {
		for _, id := range strings.Split(*only, ",") {
			id = strings.TrimSpace(id)
			fn, ok := all[id]
			if !ok {
				fmt.Fprintf(os.Stderr, "experiments: unknown id %q\n", id)
				os.Exit(1)
			}
			reports = append(reports, fn(opts))
		}
	} else {
		reports = experiments.All(opts)
	}

	if *markdown {
		fmt.Print(experiments.Markdown(reports))
	} else {
		failed := 0
		for _, r := range reports {
			status := "PASS"
			if !r.Pass {
				status = "FAIL"
				failed++
			}
			fmt.Printf("[%s] %-4s %s\n      claim:    %s\n      measured: %s\n",
				status, r.ID, r.Artifact, r.Claim, r.Measured)
			for _, t := range r.Tables {
				fmt.Printf("      %s\n", t.Title)
				fmt.Printf("        %s\n", strings.Join(t.Header, " | "))
				for _, row := range t.Rows {
					fmt.Printf("        %s\n", strings.Join(row, " | "))
				}
			}
		}
		if failed > 0 {
			fmt.Printf("\n%d experiment(s) FAILED\n", failed)
			os.Exit(1)
		}
		fmt.Printf("\nall %d experiments passed\n", len(reports))
	}
}
