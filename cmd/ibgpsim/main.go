// Command ibgpsim runs one protocol variant over a topology and reports
// the outcome. Three execution substrates are available: the paper's
// abstract activation model, the message-level discrete-event simulator,
// and real TCP speakers on the loopback interface. The two operational
// substrates drive the identical router core and share the typed-event
// trace rendering and operational counters.
//
// Usage:
//
//	ibgpsim -topology sys.json [-policy classic|walton|modified]
//	        [-order paper|rfc] [-med standard|always]
//	        [-schedule roundrobin|allatonce|random] [-seed N]
//	        [-max-steps N] [-trace] [-figure 1a|1b|2|3|12|13|14]
//	        [-substrate model|sim|tcp] [-delay N] [-jitter N] [-mrai N]
//	        [-wait D] [-faults SPEC] [-codec private|bgp4]
//
// Either -topology or -figure selects the system. -substrate=sim runs the
// message-level simulator (virtual ticks; -delay/-jitter shape per-message
// delays), -substrate=tcp runs the loopback speakers (milliseconds; -wait
// bounds the quiescence wait). -msgsim is a deprecated alias for
// -substrate=sim.
//
// -codec selects the TCP speakers' wire format: the compact private codec
// (default) or real BGP-4 messages per RFC 4271/4456/7911. The codec is
// pure transport — both produce identical routing outcomes.
//
// -faults installs a deterministic fault plan on either operational
// substrate: "seed=7,drop=0.05,dup=0.02,delay=0.2,maxdelay=30,
// reset=0-1@100+50,horizon=600" drops/duplicates/delays UPDATEs with the
// given per-message probabilities, resets the 0-1 session at t=100 for 50
// ticks (sim) / ms (tcp), and ceases all faults at t=600.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	ibgp "repro"
	"repro/internal/cli"
	"repro/internal/trace"
)

func main() {
	var (
		topoPath  = flag.String("topology", "", "topology JSON file")
		figure    = flag.String("figure", "", "paper figure: 1a, 1b, 2, 3, 12, 13, 14")
		policy    = flag.String("policy", "classic", "classic, walton, modified or adaptive")
		order     = flag.String("order", "paper", "rule order: paper or rfc")
		med       = flag.String("med", "standard", "MED mode: standard or always")
		schedule  = flag.String("schedule", "roundrobin", "roundrobin, allatonce or random")
		seed      = flag.Int64("seed", 1, "seed for -schedule random and -jitter")
		maxSteps  = flag.Int("max-steps", 10000, "activation / event budget")
		showTr    = flag.Bool("trace", false, "print per-event trace")
		substrate = flag.String("substrate", "model", "execution substrate: model, sim or tcp")
		useMsg    = flag.Bool("msgsim", false, "deprecated alias for -substrate=sim")
		delay     = flag.Int64("delay", 10, "sim: base message delay")
		jitter    = flag.Int64("jitter", 0, "sim: random extra delay bound")
		mrai      = flag.Int64("mrai", 0, "minimum route advertisement interval, sim ticks / tcp ms (0 off)")
		wait      = flag.Duration("wait", 5*time.Second, "tcp: quiescence wait bound")
		faultSpec = flag.String("faults", "", `sim/tcp: fault plan, e.g. "seed=7,drop=0.05,dup=0.02,delay=0.2,maxdelay=30,reset=0-1@100+50,horizon=600"`)
		codecName = flag.String("codec", "private", "tcp: wire format, private or bgp4")
	)
	flag.Parse()

	sys, err := cli.LoadSystem(*topoPath, *figure)
	if err != nil {
		fmt.Fprintln(os.Stderr, "ibgpsim:", err)
		os.Exit(1)
	}
	pol, err := cli.ParsePolicy(*policy)
	if err != nil {
		fmt.Fprintln(os.Stderr, "ibgpsim:", err)
		os.Exit(1)
	}
	opts, err := cli.ParseOptions(*order, *med)
	if err != nil {
		fmt.Fprintln(os.Stderr, "ibgpsim:", err)
		os.Exit(1)
	}
	if *useMsg {
		*substrate = "sim"
	}
	codec, err := cli.ParseCodec(*codecName)
	if err != nil {
		fmt.Fprintln(os.Stderr, "ibgpsim:", err)
		os.Exit(1)
	}
	var plan *ibgp.FaultPlan
	if *faultSpec != "" {
		if *substrate == "model" {
			fmt.Fprintln(os.Stderr, "ibgpsim: -faults needs an operational substrate (-substrate=sim or tcp)")
			os.Exit(1)
		}
		plan, err = ibgp.ParseFaultSpec(*faultSpec)
		if err != nil {
			fmt.Fprintln(os.Stderr, "ibgpsim:", err)
			os.Exit(1)
		}
	}

	switch *substrate {
	case "model":
		runModel(sys, pol, opts, *schedule, *seed, *maxSteps, *showTr)
	case "sim":
		runMsgsim(sys, pol, opts, plan, *delay, *jitter, *mrai, *seed, *maxSteps, *showTr)
	case "tcp":
		runTCP(sys, pol, opts, plan, codec, *mrai, *wait, *showTr)
	default:
		fmt.Fprintf(os.Stderr, "ibgpsim: unknown substrate %q (model, sim or tcp)\n", *substrate)
		os.Exit(1)
	}
}

func runModel(sys *ibgp.System, pol ibgp.Policy, opts ibgp.Options, schedule string, seed int64, maxSteps int, showTr bool) {
	sch, err := cli.ParseSchedule(schedule, sys.N(), seed)
	if err != nil {
		fmt.Fprintln(os.Stderr, "ibgpsim:", err)
		os.Exit(1)
	}
	eng := ibgp.NewEngine(sys, pol, opts)
	rec := trace.NewRecorder(sys, 0)
	if showTr {
		eng.Observe(rec.Hook())
	}
	res := ibgp.Run(eng, sch, ibgp.RunOptions{MaxSteps: maxSteps})
	if showTr {
		rec.WriteTo(os.Stdout)
	}
	fmt.Println(trace.ResultLine(pol, res))
	if res.Outcome == ibgp.Converged {
		fmt.Print(trace.Summary(sys, res.Final))
		plane := ibgp.NewForwardingPlane(sys, res.Final)
		if loops := plane.Loops(); len(loops) > 0 {
			fmt.Printf("WARNING: forwarding loops at %d routers\n", len(loops))
		}
	}
	if res.Outcome == ibgp.Cycled {
		fmt.Printf("proved oscillation: state recurs with cycle length %d schedule periods\n", res.CycleLen)
	}
}

// printBest renders the per-router best-path table shared by the two
// operational substrates.
func printBest(sys *ibgp.System, best []ibgp.PathID) {
	for u := 0; u < sys.N(); u++ {
		b := "-"
		if best[u] != ibgp.None {
			b = fmt.Sprintf("p%d", best[u])
		}
		fmt.Printf("%-10s best=%s\n", sys.Name(ibgp.NodeID(u)), b)
	}
}

func runMsgsim(sys *ibgp.System, pol ibgp.Policy, opts ibgp.Options, plan *ibgp.FaultPlan, delay, jitter, mrai, seed int64, maxEvents int, showTrace bool) {
	var df ibgp.DelayFunc
	if jitter > 0 {
		var err error
		df, err = ibgp.RandomDelay(seed, delay, delay+jitter)
		if err != nil {
			fmt.Fprintln(os.Stderr, "ibgpsim:", err)
			os.Exit(1)
		}
	} else {
		df = ibgp.ConstantDelay(delay)
	}
	s := ibgp.NewSim(sys, pol, opts, df)
	s.SetMRAI(mrai)
	if err := s.SetFaults(plan); err != nil {
		fmt.Fprintln(os.Stderr, "ibgpsim:", err)
		os.Exit(1)
	}
	if showTrace {
		// The sim's line trace is the shared typed-event renderer applied
		// to the core's event stream.
		s.Observe(func(line string) { fmt.Println(line) })
	}
	s.InjectAll()
	res := s.Run(maxEvents)
	fmt.Printf("policy=%-8s quiesced=%-5v events=%-7d messages=%-7d flaps=%-6d t=%d\n",
		pol, res.Quiesced, res.Events, res.Messages, res.Flaps, res.Time)
	fmt.Println(ibgp.CountersLine(s.Counters()))
	if fl := ibgp.FaultsLine(s.Counters()); fl != "" {
		fmt.Println(fl)
	}
	printBest(sys, res.Best)
	if !res.Quiesced {
		os.Exit(2)
	}
}

func runTCP(sys *ibgp.System, pol ibgp.Policy, opts ibgp.Options, plan *ibgp.FaultPlan, codec ibgp.Codec, mrai int64, wait time.Duration, showTrace bool) {
	n := ibgp.NewTCPNetwork(sys, pol, opts)
	n.SetCodec(codec)
	n.SetMRAI(mrai)
	if err := n.SetFaults(plan); err != nil {
		fmt.Fprintln(os.Stderr, "ibgpsim:", err)
		os.Exit(1)
	}
	if showTrace {
		render := ibgp.NewRouterEventRenderer(sys, len(n.Prefixes()) > 1)
		n.Observe(func(ev ibgp.RouterEvent) {
			if line := render(ev); line != "" {
				fmt.Println(line)
			}
		})
	}
	if err := n.Start(); err != nil {
		fmt.Fprintln(os.Stderr, "ibgpsim:", err)
		os.Exit(1)
	}
	defer n.Stop()
	n.InjectAll()
	quiesced := n.WaitQuiesce(wait, 150*time.Millisecond)
	n.Observe(nil) // stop tracing before the final reads
	c := n.Counters()
	fmt.Printf("policy=%-8s quiesced=%-5v messages=%-7d flaps=%-6d\n",
		pol, quiesced, c.Sent, c.Flaps)
	fmt.Println(ibgp.CountersLine(c))
	if fl := ibgp.FaultsLine(c); fl != "" {
		fmt.Println(fl)
	}
	if sl := ibgp.SessionLine(c); sl != "" {
		fmt.Println(sl)
	}
	printBest(sys, n.BestAll())
	if !quiesced {
		os.Exit(2)
	}
}
