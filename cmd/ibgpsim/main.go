// Command ibgpsim runs one protocol variant over a topology under a chosen
// activation schedule or message-delay model and reports the outcome.
//
// Usage:
//
//	ibgpsim -topology sys.json [-policy classic|walton|modified]
//	        [-order paper|rfc] [-med standard|always]
//	        [-schedule roundrobin|allatonce|random] [-seed N]
//	        [-max-steps N] [-trace] [-figure 1a|1b|2|3|12|13|14]
//	        [-msgsim] [-delay N] [-jitter N]
//
// Either -topology or -figure selects the system. With -msgsim the
// message-level simulator is used instead of the activation model.
package main

import (
	"flag"
	"fmt"
	"os"

	ibgp "repro"
	"repro/internal/cli"
	"repro/internal/trace"
)

func main() {
	var (
		topoPath = flag.String("topology", "", "topology JSON file")
		figure   = flag.String("figure", "", "paper figure: 1a, 1b, 2, 3, 12, 13, 14")
		policy   = flag.String("policy", "classic", "classic, walton, modified or adaptive")
		order    = flag.String("order", "paper", "rule order: paper or rfc")
		med      = flag.String("med", "standard", "MED mode: standard or always")
		schedule = flag.String("schedule", "roundrobin", "roundrobin, allatonce or random")
		seed     = flag.Int64("seed", 1, "seed for -schedule random and -jitter")
		maxSteps = flag.Int("max-steps", 10000, "activation / event budget")
		showTr   = flag.Bool("trace", false, "print per-event trace")
		useMsg   = flag.Bool("msgsim", false, "use the message-level simulator")
		delay    = flag.Int64("delay", 10, "msgsim: base message delay")
		jitter   = flag.Int64("jitter", 0, "msgsim: random extra delay bound")
		mrai     = flag.Int64("mrai", 0, "msgsim: minimum route advertisement interval (0 off)")
	)
	flag.Parse()

	sys, err := cli.LoadSystem(*topoPath, *figure)
	if err != nil {
		fmt.Fprintln(os.Stderr, "ibgpsim:", err)
		os.Exit(1)
	}
	pol, err := cli.ParsePolicy(*policy)
	if err != nil {
		fmt.Fprintln(os.Stderr, "ibgpsim:", err)
		os.Exit(1)
	}
	opts, err := cli.ParseOptions(*order, *med)
	if err != nil {
		fmt.Fprintln(os.Stderr, "ibgpsim:", err)
		os.Exit(1)
	}

	if *useMsg {
		runMsgsim(sys, pol, opts, *delay, *jitter, *mrai, *seed, *maxSteps, *showTr)
		return
	}

	sch, err := cli.ParseSchedule(*schedule, sys.N(), *seed)
	if err != nil {
		fmt.Fprintln(os.Stderr, "ibgpsim:", err)
		os.Exit(1)
	}

	eng := ibgp.NewEngine(sys, pol, opts)
	rec := trace.NewRecorder(sys, 0)
	if *showTr {
		eng.Observe(rec.Hook())
	}
	res := ibgp.Run(eng, sch, ibgp.RunOptions{MaxSteps: *maxSteps})
	if *showTr {
		rec.WriteTo(os.Stdout)
	}
	fmt.Println(trace.ResultLine(pol, res))
	if res.Outcome == ibgp.Converged {
		fmt.Print(trace.Summary(sys, res.Final))
		plane := ibgp.NewForwardingPlane(sys, res.Final)
		if loops := plane.Loops(); len(loops) > 0 {
			fmt.Printf("WARNING: forwarding loops at %d routers\n", len(loops))
		}
	}
	if res.Outcome == ibgp.Cycled {
		fmt.Printf("proved oscillation: state recurs with cycle length %d schedule periods\n", res.CycleLen)
	}
}

func runMsgsim(sys *ibgp.System, pol ibgp.Policy, opts ibgp.Options, delay, jitter, mrai, seed int64, maxEvents int, showTrace bool) {
	var df ibgp.DelayFunc
	if jitter > 0 {
		df = ibgp.RandomDelay(seed, delay, delay+jitter)
	} else {
		df = ibgp.ConstantDelay(delay)
	}
	s := ibgp.NewSim(sys, pol, opts, df)
	s.SetMRAI(mrai)
	if showTrace {
		s.Observe(func(line string) { fmt.Println(line) })
	}
	s.InjectAll()
	res := s.Run(maxEvents)
	fmt.Printf("policy=%-8s quiesced=%-5v events=%-7d messages=%-7d flaps=%-6d t=%d\n",
		pol, res.Quiesced, res.Events, res.Messages, res.Flaps, res.Time)
	for u := 0; u < sys.N(); u++ {
		best := "-"
		if res.Best[u] != ibgp.None {
			best = fmt.Sprintf("p%d", res.Best[u])
		}
		fmt.Printf("%-10s best=%s\n", sys.Name(ibgp.NodeID(u)), best)
	}
	if !res.Quiesced {
		os.Exit(2)
	}
}
