// Command oscheck analyses the stability of a topology: it enumerates the
// stable solutions of classic I-BGP, explores the reachable configuration
// graph (deciding the paper's STABLE I-BGP WITH ROUTE REFLECTION question
// for small systems), and reports whether each policy can or must
// oscillate.
//
// Usage:
//
//	oscheck -topology sys.json [-figure 1a|...] [-subsets] [-max-states N]
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/bgp"
	"repro/internal/cli"
	"repro/internal/explore"
	"repro/internal/protocol"
	"repro/internal/selection"
)

func main() {
	var (
		topoPath  = flag.String("topology", "", "topology JSON file")
		figure    = flag.String("figure", "", "paper figure: 1a, 1b, 2, 3, 12, 13, 14")
		subsets   = flag.Bool("subsets", false, "explore all activation subsets (exact, exponential)")
		maxStates = flag.Int("max-states", 500000, "reachable-state budget")
	)
	flag.Parse()

	sys, err := cli.LoadSystem(*topoPath, *figure)
	if err != nil {
		fmt.Fprintln(os.Stderr, "oscheck:", err)
		os.Exit(1)
	}

	fmt.Printf("system: %d routers, %d clusters, %d exit paths\n\n",
		sys.N(), sys.NumClusters(), sys.NumExits())

	// Global stable-solution enumeration (classic only).
	enum := explore.EnumerateStableClassic(protocol.New(sys, protocol.Classic, selection.Options{}), 0)
	if enum.Truncated {
		fmt.Printf("classic stable solutions: enumeration truncated after %d candidates\n", enum.Candidates)
	} else {
		fmt.Printf("classic stable solutions (anywhere in configuration space): %d\n", len(enum.Solutions))
		for i, s := range enum.Solutions {
			fmt.Printf("  solution %d: %s\n", i+1, s)
		}
	}
	fmt.Println()

	mode := explore.SingletonsPlusAll
	if *subsets {
		mode = explore.AllSubsets
	}
	exitCode := 0
	for _, policy := range []protocol.Policy{protocol.Classic, protocol.Walton, protocol.Modified} {
		e := protocol.New(sys, policy, selection.Options{})
		a := explore.Reachable(e, explore.Options{Mode: mode, MaxStates: *maxStates})
		verdict := "STABILIZABLE"
		switch {
		case a.Truncated:
			verdict = "UNDECIDED (budget exhausted)"
		case !a.Stabilizable():
			verdict = "PERSISTENT OSCILLATION (no reachable fixed point)"
			if policy == protocol.Classic {
				exitCode = 3
			}
		}
		fmt.Printf("%-8s reachable states=%-8d fixed points=%-3d %s\n",
			policy, a.States, len(a.FixedPoints), verdict)

		if !a.Truncated && !a.Stabilizable() {
			// Print a concrete oscillation cycle as the proof artifact.
			e2 := protocol.New(sys, policy, selection.Options{})
			if steps, cycleLen, ok := protocol.CycleWitness(e2, protocol.RoundRobin(sys.N()), 20000); ok {
				fmt.Printf("         witness cycle under round-robin (%d round(s)):\n", cycleLen)
				for _, st := range steps {
					fmt.Printf("           %s: %s -> %s\n",
						sys.Name(st.Node), pathName(st.From), pathName(st.To))
				}
			}
		}
	}
	os.Exit(exitCode)
}

func pathName(id bgp.PathID) string {
	if id == bgp.None {
		return "(none)"
	}
	return fmt.Sprintf("p%d", id)
}
