// Command satreduce converts a 3-SAT formula (DIMACS CNF, stdin or file)
// into the STABLE I-BGP WITH ROUTE REFLECTION instance of Theorem 5.1,
// optionally solves the formula with DPLL, drives the instance into the
// corresponding routing configuration, and verifies stability.
//
// Usage:
//
//	satreduce [-in formula.cnf] [-out topology.json] [-solve] [-random n:m:seed]
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	ibgp "repro"
	"repro/internal/protocol"
	"repro/internal/sat"
	"repro/internal/topology"
)

func main() {
	var (
		in     = flag.String("in", "", "DIMACS CNF input (default stdin)")
		out    = flag.String("out", "", "write the reduced topology JSON here")
		solve  = flag.Bool("solve", false, "solve with DPLL and verify the induced routing is stable")
		random = flag.String("random", "", "generate a random 3-SAT instance n:m:seed instead of reading input")
	)
	flag.Parse()

	f, err := input(*in, *random)
	if err != nil {
		fmt.Fprintln(os.Stderr, "satreduce:", err)
		os.Exit(1)
	}
	fmt.Printf("formula: %s  (%d vars, %d clauses)\n", f, f.NumVars, len(f.Clauses))

	red, err := sat.Reduce(f)
	if err != nil {
		fmt.Fprintln(os.Stderr, "satreduce:", err)
		os.Exit(1)
	}
	fmt.Printf("instance: %d routers, %d clusters, %d exit paths\n",
		red.Sys.N(), red.Sys.NumClusters(), red.Sys.NumExits())

	if *out != "" {
		w, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, "satreduce:", err)
			os.Exit(1)
		}
		if err := topology.Save(w, red.Sys); err != nil {
			fmt.Fprintln(os.Stderr, "satreduce:", err)
			os.Exit(1)
		}
		w.Close()
		fmt.Printf("topology written to %s\n", *out)
	}

	if !*solve {
		return
	}
	assign, ok := sat.Solve(f)
	if !ok {
		fmt.Println("DPLL: UNSATISFIABLE — the instance has no stable solution (Theorem 5.1)")
		res := protocol.Run(protocol.New(red.Sys, protocol.Classic, ibgp.Options{}),
			protocol.RoundRobin(red.Sys.N()), protocol.RunOptions{MaxSteps: 20000})
		fmt.Printf("round-robin execution: %v\n", res.Outcome)
		return
	}
	fmt.Printf("DPLL: SATISFIABLE with %s\n", renderAssign(assign))
	eng, res := red.StabilizeWithAssignment(assign, 50000)
	fmt.Printf("lock-in execution: %v after %d steps\n", res.Outcome, res.Steps)
	if res.Outcome == protocol.Converged && eng.Stable() {
		fmt.Println("certificate check: configuration is a stable solution")
		if got, ok := red.AssignmentFromSnapshot(res.Final); ok {
			fmt.Printf("decoded assignment from routing: %s (satisfies: %v)\n",
				renderAssign(got), f.Eval(got))
		}
	} else {
		fmt.Println("certificate check FAILED")
		os.Exit(2)
	}
}

func input(path, random string) (*sat.Formula, error) {
	if random != "" {
		var n, m int
		var seed int64
		if _, err := fmt.Sscanf(random, "%d:%d:%d", &n, &m, &seed); err != nil {
			return nil, fmt.Errorf("bad -random %q (want n:m:seed)", random)
		}
		return sat.Random3SAT(n, m, seed), nil
	}
	var r io.Reader = os.Stdin
	if path != "" {
		file, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		defer file.Close()
		r = file
	}
	return sat.ParseDIMACS(r)
}

func renderAssign(a []bool) string {
	parts := make([]string, 0, len(a)-1)
	for v := 1; v < len(a); v++ {
		if a[v] {
			parts = append(parts, fmt.Sprintf("x%d=T", v))
		} else {
			parts = append(parts, fmt.Sprintf("x%d=F", v))
		}
	}
	return strings.Join(parts, " ")
}
