package ibgp

import (
	"context"

	"repro/internal/campaign"
	"repro/internal/workload"
)

// Mass surveys (package campaign): shard a seed range across a worker
// pool, classify every seed's random system, and fold the results into a
// deterministic aggregate with JSONL checkpointing and resume. The
// aggregate depends only on the job and the seed range — never on the
// shard count or on kill/resume boundaries.
type (
	// CampaignJob is the pluggable per-seed unit of work.
	CampaignJob = campaign.Job
	// CampaignConfig tunes sharding, checkpointing and progress.
	CampaignConfig = campaign.Config
	// CampaignAggregate is the deterministic summary of a campaign.
	CampaignAggregate = campaign.Aggregate
	// CampaignSeedResult is one seed's outcome.
	CampaignSeedResult = campaign.SeedResult
	// CampaignProgress is a point-in-time progress snapshot.
	CampaignProgress = campaign.ProgressReport
	// CensusJob classifies random systems under every advertisement
	// policy, exhaustively where the state space fits the budget.
	CensusJob = campaign.CensusJob
	// Fig13Job reproduces the paper's Figure 13 counterexample hunt as a
	// campaign over the crossed random family.
	Fig13Job = campaign.Fig13Job
	// FuzzJob surveys message-level timing dependence with msgsim.
	FuzzJob = campaign.FuzzJob
	// WorkloadParams selects a random system family.
	WorkloadParams = workload.Params
)

// RunCampaign executes a job over a seed range; see campaign.Run.
func RunCampaign(ctx context.Context, job CampaignJob, cfg CampaignConfig) (*CampaignAggregate, error) {
	return campaign.Run(ctx, job, cfg)
}

// DefaultWorkloadParams returns the medium random family with c clusters.
func DefaultWorkloadParams(c int) WorkloadParams { return workload.Default(c) }
