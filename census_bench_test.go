package ibgp

// BenchmarkCensus measures the campaign engine on a fixed 500-seed census
// and records the serial-vs-sharded wall clock in BENCH_census.json so the
// perf trajectory accumulates across commits. The two configurations must
// produce byte-identical aggregates — the speedup may never come from
// changed results.

import (
	"context"
	"encoding/json"
	"os"
	"runtime"
	"testing"
	"time"

	"repro/internal/campaign"
	"repro/internal/workload"
)

// benchCensusJob is the pinned benchmark workload: 500 seeds of the
// 2-cluster MED-rich family used by E23, small enough to explore
// exhaustively per seed but large enough to keep every worker busy.
func benchCensusJob() (campaign.CensusJob, campaign.Config) {
	job := campaign.CensusJob{
		Params: workload.Params{
			Clusters: 2, MinClients: 1, MaxClients: 2, ASes: 2,
			Exits: 4, MaxMED: 2, MaxCost: 8, ExtraLinks: 2,
		},
		MaxStates: 1500,
	}
	return job, campaign.Config{Start: 1, Seeds: 500}
}

// runCensus times the census at the given shard count, keeping the best
// of two runs so a scheduler hiccup in either configuration does not
// masquerade as a speedup or regression.
func runCensus(b *testing.B, shards int) ([]byte, time.Duration) {
	b.Helper()
	job, cfg := benchCensusJob()
	cfg.Shards = shards
	var best time.Duration
	var out []byte
	for attempt := 0; attempt < 2; attempt++ {
		begin := time.Now()
		agg, err := campaign.Run(context.Background(), job, cfg)
		elapsed := time.Since(begin)
		if err != nil {
			b.Fatal(err)
		}
		enc, err := json.Marshal(agg)
		if err != nil {
			b.Fatal(err)
		}
		if attempt > 0 && string(enc) != string(out) {
			b.Fatalf("shards=%d aggregate not reproducible across runs", shards)
		}
		if out == nil || elapsed < best {
			best, out = elapsed, enc
		}
	}
	return out, best
}

func BenchmarkCensus(b *testing.B) {
	shards := runtime.GOMAXPROCS(0)
	var serial, sharded time.Duration
	var aggJSON []byte
	for i := 0; i < b.N; i++ {
		serialJSON, t1 := runCensus(b, 1)
		shardedJSON, tN := runCensus(b, shards)
		if string(serialJSON) != string(shardedJSON) {
			b.Fatalf("shards=1 and shards=%d aggregates diverge:\n%s\nvs\n%s",
				shards, serialJSON, shardedJSON)
		}
		serial, sharded, aggJSON = t1, tN, serialJSON
	}
	b.ReportMetric(serial.Seconds()/sharded.Seconds(), "speedup")

	var agg campaign.Aggregate
	if err := json.Unmarshal(aggJSON, &agg); err != nil {
		b.Fatal(err)
	}
	record := struct {
		Job        string   `json:"job"`
		Seeds      int      `json:"seeds"`
		Shards     int      `json:"shards"`
		SerialSec  float64  `json:"serial_sec"`
		ShardedSec float64  `json:"sharded_sec"`
		Speedup    float64  `json:"speedup"`
		ClassicOsc int      `json:"classic_osc"`
		WaltonOsc  int      `json:"walton_osc"`
		Exhaustive int      `json:"exhaustive"`
		States     int64    `json:"total_states"`
		Identical  bool     `json:"aggregates_identical"`
		Env        benchEnv `json:"env"`
	}{
		Job:        "census/2-cluster-med-rich",
		Seeds:      500,
		Shards:     shards,
		SerialSec:  serial.Seconds(),
		ShardedSec: sharded.Seconds(),
		Speedup:    serial.Seconds() / sharded.Seconds(),
		ClassicOsc: agg.ClassicOsc,
		WaltonOsc:  agg.WaltonOsc,
		Exhaustive: agg.Exhaustive,
		States:     agg.TotalStates,
		Identical:  true,
		Env:        hostEnv(),
	}
	out, err := json.MarshalIndent(record, "", "  ")
	if err != nil {
		b.Fatal(err)
	}
	if err := os.WriteFile("BENCH_census.json", append(out, '\n'), 0o644); err != nil {
		b.Fatal(err)
	}
}
