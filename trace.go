package ibgp

import (
	"repro/internal/protocol"
	"repro/internal/trace"
)

// Tracing helpers (package trace).
type (
	// TraceRecorder accumulates engine events for rendering.
	TraceRecorder = trace.Recorder
	// Event is one engine activation event.
	Event = protocol.Event
)

// NewTraceRecorder returns a recorder whose Hook can be registered with
// Engine.Observe; limit bounds retained events (0 = 100000).
func NewTraceRecorder(sys *System, limit int) *TraceRecorder {
	return trace.NewRecorder(sys, limit)
}

// Summary renders the routing table of a snapshot as text.
func Summary(sys *System, snap Snapshot) string { return trace.Summary(sys, snap) }

// NewRouterEventRenderer returns the shared line renderer for the typed
// operational event stream; both substrates' traces use it. It returns ""
// for events with no line form.
func NewRouterEventRenderer(sys *System, multi bool) func(RouterEvent) string {
	return trace.NewRouterEventRenderer(sys, multi)
}

// CountersLine renders the shared operational counters of one run.
func CountersLine(c OperationalCounters) string { return trace.CountersLine(c) }

// FaultsLine renders the fault-injection counters of one run, or "" when
// no fault fired.
func FaultsLine(c OperationalCounters) string { return trace.FaultsLine(c) }

// SessionLine renders the session-machinery counters of one run (peer
// NOTIFICATIONs, bad frames, hold-timer expiries, RFC 4456 loop drops), or
// "" when none fired.
func SessionLine(c OperationalCounters) string { return trace.SessionLine(c) }
